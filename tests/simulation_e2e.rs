//! End-to-end integration tests of the simulated multi-region fabric:
//! conservation of requests, determinism, and the paper's qualitative
//! orderings on small workloads.

use skywalker::{
    fig10_scenario, fig8_scenario, fig9_scenario, run_scenario, FabricConfig, RunSummary,
    SystemKind, Workload,
};

fn small(system: SystemKind, workload: Workload, seed: u64) -> RunSummary {
    run_scenario(
        &fig8_scenario(system, workload, 0.08, seed),
        &FabricConfig::default(),
    )
}

#[test]
fn all_requests_accounted_for_across_systems() {
    for system in SystemKind::FIG8 {
        let scenario = fig8_scenario(system, Workload::Arena, 0.05, 3);
        let expected: usize = scenario
            .clients_until(skywalker::sim::SimTime::ZERO)
            .iter()
            .map(|c| c.total_requests())
            .sum();
        let s = run_scenario(&scenario, &FabricConfig::default());
        assert_eq!(
            (s.report.completed + s.report.in_flight + s.report.failed) as usize,
            expected,
            "{}: requests lost or duplicated",
            system.label()
        );
        assert_eq!(
            s.report.failed,
            0,
            "{}: unexpected failures",
            system.label()
        );
        assert_eq!(s.report.in_flight, 0, "{}: stuck requests", system.label());
    }
}

#[test]
fn deterministic_given_seed() {
    let a = small(SystemKind::SkyWalker, Workload::Arena, 11);
    let b = small(SystemKind::SkyWalker, Workload::Arena, 11);
    assert_eq!(a.report.completed, b.report.completed);
    assert_eq!(a.report.generated_tokens, b.report.generated_tokens);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.forwarded, b.forwarded);
    assert!((a.report.ttft.p90 - b.report.ttft.p90).abs() < 1e-12);
}

#[test]
fn different_seeds_differ() {
    let a = small(SystemKind::SkyWalker, Workload::Arena, 1);
    let b = small(SystemKind::SkyWalker, Workload::Arena, 2);
    // The workloads differ, so the timelines must too.
    assert_ne!(a.end_time, b.end_time);
}

#[test]
fn skywalker_beats_round_robin_on_conversations() {
    let rr = small(SystemKind::RoundRobin, Workload::WildChat, 5);
    let sw = small(SystemKind::SkyWalker, Workload::WildChat, 5);
    assert!(
        sw.report.throughput_tps > rr.report.throughput_tps,
        "SkyWalker {:.0} tok/s must beat RR {:.0} tok/s",
        sw.report.throughput_tps,
        rr.report.throughput_tps
    );
    assert!(
        sw.replica_hit_rate > rr.replica_hit_rate,
        "prefix-aware routing must lift the hit rate"
    );
}

#[test]
fn geo_distribution_cuts_median_ttft() {
    // Centralized baselines pay a cross-region RTT for most clients.
    let central = small(SystemKind::LeastLoad, Workload::Arena, 7);
    let geo = small(SystemKind::SkyWalker, Workload::Arena, 7);
    assert!(
        geo.report.ttft.p50 < central.report.ttft.p50,
        "geo p50 {:.3}s vs centralized {:.3}s",
        geo.report.ttft.p50,
        central.report.ttft.p50
    );
}

#[test]
fn skewed_load_triggers_forwarding_only_for_skywalker() {
    // Scale 0.3 puts ~36 US clients on 2 US replicas: enough concurrent
    // KV footprint to saturate the local batch and force offloading.
    let cfg = FabricConfig::default();
    let sw = run_scenario(&fig10_scenario(SystemKind::SkyWalker, 6, 0.3, 9), &cfg);
    let rl = run_scenario(&fig10_scenario(SystemKind::RegionLocal, 6, 0.3, 9), &cfg);
    assert!(sw.forwarded > 0, "US overload must offload cross-region");
    assert_eq!(rl.forwarded, 0, "region-local must never forward");
    assert!(
        sw.report.throughput_tps >= rl.report.throughput_tps,
        "cross-region offloading must not hurt throughput: {:.0} vs {:.0}",
        sw.report.throughput_tps,
        rl.report.throughput_tps
    );
}

#[test]
fn single_region_microbenchmark_has_no_cross_region_effects() {
    let s = run_scenario(
        &fig9_scenario(SystemKind::SkyWalker, 4, 8, 13),
        &FabricConfig::default(),
    );
    assert_eq!(s.forwarded, 0, "one region, nothing to forward to");
    assert_eq!(s.report.failed, 0);
    assert!(s.report.completed > 0);
    // Everything co-located: medians dominated by prefill, well under a
    // second for short ToT prompts with warm caches.
    assert!(s.report.ttft.p50 < 2.0, "p50 {:.3}s", s.report.ttft.p50);
}

#[test]
fn tot_workload_high_cache_hit_for_affinity_systems() {
    let sw = small(SystemKind::SkyWalker, Workload::Tot, 17);
    let rr = small(SystemKind::RoundRobin, Workload::Tot, 17);
    assert!(
        sw.replica_hit_rate > 0.5,
        "ToT trees share ancestor paths: hit rate {:.2}",
        sw.replica_hit_rate
    );
    assert!(sw.replica_hit_rate > rr.replica_hit_rate);
}

#[test]
fn summaries_are_internally_consistent() {
    let s = small(SystemKind::SkyWalker, Workload::MixedTree, 19);
    let r = &s.report;
    assert!(r.ttft.p50 <= r.ttft.p90);
    assert!(r.e2e.p50 <= r.e2e.p90);
    assert!(r.ttft.p50 <= r.e2e.p50, "TTFT cannot exceed E2E");
    assert!(r.cache_hit_rate >= 0.0 && r.cache_hit_rate <= 1.0);
    assert!(s.request_rate() > 0.0);
    assert_eq!(s.kv_series.len(), s.replica_stats.len());
    // Replica-side and client-side token accounting must agree.
    let replica_generated: u64 = s.replica_stats.iter().map(|x| x.generated_tokens).sum();
    assert!(replica_generated >= r.generated_tokens);
}
