//! Golden-run regression harness for the four-axis cross-product.
//!
//! Every preset family — the eight `SystemKind`s, the four workloads,
//! the figure scenarios, and the new `memory_pressure` engine preset —
//! runs at two seeds; each `RunSummary` is digested into a stable JSON
//! row via `skywalker_metrics::json` and compared byte-for-byte against
//! the committed files under `tests/golden/`. Any behavioral drift
//! anywhere in the stack (routing, traffic, fleet, serving engine,
//! metrics) now fails CI with a readable first-difference diff instead
//! of sailing through.
//!
//! The whole pipeline is deterministic by construction (integer sim
//! time, seeded RNG streams, sorted-histogram aggregation), so exact
//! float equality is the right bar — looser comparisons would let real
//! drift hide inside the tolerance.
//!
//! To refresh after an *intentional* behavior change:
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test --test golden_digests
//! ```
//! then commit the diff under `tests/golden/` alongside the change that
//! explains it.

use skywalker::sim::SimDuration;
use skywalker::{
    disagg_scenario, fig10_diurnal_scenario, fig10_scenario, fig8_scenario, fig9_scenario,
    memory_pressure_scenario, run_scenario, DisaggWorkload, EngineSpec, FabricConfig, FcfsBatch,
    LruEvictor, NoEvict, PrefixAwareEvictor, RunSummary, Scenario, ShortestPromptFirst, SystemKind,
    TraceConfig, Workload,
};
use skywalker_metrics::json::{Report, Val};

const SEEDS: [u64; 2] = [1, 2];

/// How a golden re-run is instrumented. Both planes are observation-only
/// by contract, so any variant must render the identical digest.
#[derive(Clone, Copy)]
enum Instrument {
    None,
    Trace,
    Telemetry(SimDuration),
}

/// One golden cell: a tag and a seed-parametric scenario builder.
type GoldenCell = (String, Box<dyn Fn(u64) -> Scenario>);

fn digest_row(tag: &str, seed: u64, s: &RunSummary) -> Vec<(String, Val)> {
    let r = &s.report;
    [
        ("tag", Val::from(tag)),
        ("seed", Val::from(seed)),
        ("label", Val::from(s.label.clone())),
        ("engine", Val::from(s.engine_label.clone())),
        ("completed", Val::from(r.completed)),
        ("failed", Val::from(r.failed)),
        ("retried", Val::from(r.retried)),
        ("in_flight", Val::from(r.in_flight)),
        ("prompt_tokens", Val::from(r.prompt_tokens)),
        ("cached_prompt_tokens", Val::from(r.cached_prompt_tokens)),
        ("generated_tokens", Val::from(r.generated_tokens)),
        ("tok_s", Val::from(r.throughput_tps)),
        ("client_hit_rate", Val::from(r.cache_hit_rate)),
        ("replica_hit_rate", Val::from(s.replica_hit_rate)),
        ("ttft_p50_s", Val::from(r.ttft.p50)),
        ("ttft_p90_s", Val::from(r.ttft.p90)),
        ("ttft_mean_s", Val::from(r.ttft.mean)),
        ("e2e_p50_s", Val::from(r.e2e.p50)),
        ("e2e_p90_s", Val::from(r.e2e.p90)),
        ("end_time_s", Val::from(s.end_time.as_secs_f64())),
        ("forwarded", Val::from(s.forwarded)),
        ("peak_lb_queue", Val::from(s.peak_lb_queue)),
        ("dispatch_imbalance", Val::from(s.dispatch_imbalance)),
        ("preempted", Val::from(s.preempted)),
        ("evicted_tokens", Val::from(s.evicted_tokens)),
        ("chunked_steps", Val::from(s.chunked_steps)),
        ("fleet_joins", Val::from(s.fleet.joins)),
        ("fleet_crashes", Val::from(s.fleet.crashes)),
        ("fleet_mean", Val::from(s.fleet.mean_total())),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect()
}

/// The disagg group's digest: the shared row plus the handoff and tier
/// counters that only the role-split presets exercise. Kept out of
/// `digest_row` so the pre-disagg golden files stay byte-identical.
fn disagg_row(tag: &str, seed: u64, s: &RunSummary) -> Vec<(String, Val)> {
    let mut fields = digest_row(tag, seed, s);
    for (k, v) in [
        ("kv_transfers", Val::from(s.transfers.started)),
        ("kv_transfers_landed", Val::from(s.transfers.landed)),
        ("kv_transfers_aborted", Val::from(s.transfers.aborted)),
        ("kv_transfer_tokens", Val::from(s.transfers.tokens_sent)),
        ("demoted_tokens", Val::from(s.demoted_tokens)),
        ("promoted_tokens", Val::from(s.promoted_tokens)),
    ] {
        fields.push((k.to_string(), v));
    }
    fields
}

fn render_group(name: &str, cells: &[GoldenCell], instrument: Instrument) -> String {
    render_group_with(name, cells, instrument, digest_row)
}

fn render_group_with(
    name: &str,
    cells: &[GoldenCell],
    instrument: Instrument,
    row: fn(&str, u64, &RunSummary) -> Vec<(String, Val)>,
) -> String {
    let mut rep = Report::new(format!("golden_{name}"));
    rep.meta("seeds", format!("{SEEDS:?}"));
    for (tag, build) in cells {
        for seed in SEEDS {
            let scenario = build(seed);
            let base = FabricConfig {
                seed,
                ..FabricConfig::default()
            };
            let cfg = match instrument {
                Instrument::None => base,
                Instrument::Trace => FabricConfig {
                    trace: Some(TraceConfig::default()),
                    ..base
                },
                Instrument::Telemetry(interval) => base.telemetry(interval),
            };
            let summary = run_scenario(&scenario, &cfg);
            match instrument {
                Instrument::None => {}
                Instrument::Trace => assert!(
                    summary.trace.as_ref().is_some_and(|t| !t.events.is_empty()),
                    "{tag}/{seed}: tracing was requested but recorded nothing"
                ),
                Instrument::Telemetry(_) => assert!(
                    summary
                        .telemetry
                        .as_ref()
                        .is_some_and(|t| t.ticks > 0 && !t.snapshot.is_empty()),
                    "{tag}/{seed}: telemetry was requested but sampled nothing"
                ),
            }
            let fields = row(tag, seed, &summary);
            let refs: Vec<(&str, Val)> = fields
                .iter()
                .map(|(k, v)| (k.as_str(), v.clone()))
                .collect();
            rep.row(&refs);
        }
    }
    rep.render()
}

fn run_group(name: &str, cells: Vec<GoldenCell>) {
    compare_or_update(name, &render_group(name, &cells, Instrument::None));
}

/// Byte-compares the rendered report against `tests/golden/{name}.json`,
/// printing the first differing line on mismatch; `UPDATE_GOLDENS=1`
/// rewrites the file instead.
fn compare_or_update(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"));
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create tests/golden");
        std::fs::write(&path, rendered).expect("write golden");
        println!("updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1 cargo test --test golden_digests \
             and commit the result",
            path.display()
        )
    });
    if expected == rendered {
        return;
    }
    let exp_lines: Vec<&str> = expected.lines().collect();
    let got_lines: Vec<&str> = rendered.lines().collect();
    for i in 0..exp_lines.len().max(got_lines.len()) {
        let e = exp_lines.get(i).copied().unwrap_or("<missing>");
        let g = got_lines.get(i).copied().unwrap_or("<missing>");
        if e != g {
            panic!(
                "golden {name} drifted at line {}:\n  expected: {e}\n  got:      {g}\n\
                 If this change is intentional, refresh with \
                 UPDATE_GOLDENS=1 cargo test --test golden_digests and commit the diff.",
                i + 1
            );
        }
    }
    panic!("golden {name} drifted (line endings?)");
}

type CellList = Vec<GoldenCell>;

/// All eight deployment presets on one workload: routing-axis coverage.
#[test]
fn golden_systems() {
    let mut cells: CellList = Vec::new();
    let mut systems = SystemKind::FIG8.to_vec();
    systems.push(SystemKind::RegionLocal);
    for system in systems {
        cells.push((
            system.label().to_string(),
            Box::new(move |seed| fig8_scenario(system, Workload::Tot, 0.02, seed)),
        ));
    }
    run_group("systems", cells);
}

/// All four paper workloads on SkyWalker: traffic-axis coverage.
#[test]
fn golden_workloads() {
    let cells: CellList = Workload::ALL
        .into_iter()
        .map(|w| {
            (
                w.label().to_string(),
                Box::new(move |seed| fig8_scenario(SystemKind::SkyWalker, w, 0.02, seed))
                    as Box<dyn Fn(u64) -> Scenario>,
            )
        })
        .collect();
    run_group("workloads", cells);
}

/// The figure presets (single-region micro, diurnal-imbalance macro).
#[test]
fn golden_figures() {
    let cells: CellList = vec![
        (
            "fig9".to_string(),
            Box::new(|seed| fig9_scenario(SystemKind::SkyWalker, 2, 6, seed)),
        ),
        (
            "fig10".to_string(),
            Box::new(|seed| fig10_scenario(SystemKind::SkyWalker, 4, 0.05, seed)),
        ),
    ];
    run_group("figures", cells);
}

/// The compressed diurnal day at the scale-curve's 0.1 point: pins the
/// exact preset family the perf pass optimized (trie-heavy routing over
/// the trio demand curves), so hot-path rewrites stay behavior-
/// preserving at the byte level.
#[test]
fn golden_diurnal() {
    let cells: CellList = vec![(
        "diurnal-q10".to_string(),
        Box::new(|seed| {
            fig10_diurnal_scenario(
                SystemKind::SkyWalker,
                2,
                SimDuration::from_secs(240),
                0.1,
                seed,
            )
        }),
    )];
    run_group("diurnal", cells);
}

fn memory_pressure_cells() -> CellList {
    type EngineMaker = fn() -> EngineSpec;
    let engines: Vec<(&str, EngineMaker)> = vec![
        ("default", EngineSpec::default),
        ("chunked", || {
            EngineSpec::new(Box::new(FcfsBatch::chunked(64)), Box::new(LruEvictor))
        }),
        ("sjf-prefix", || {
            EngineSpec::new(
                Box::new(ShortestPromptFirst::new()),
                Box::new(PrefixAwareEvictor),
            )
        }),
        ("noevict", || {
            EngineSpec::new(Box::new(FcfsBatch::new()), Box::new(NoEvict))
        }),
    ];
    engines
        .into_iter()
        .map(|(tag, mk)| {
            (
                tag.to_string(),
                Box::new(move |seed| memory_pressure_scenario(mk(), 0.25, seed))
                    as Box<dyn Fn(u64) -> Scenario>,
            )
        })
        .collect()
}

/// The memory-pressure preset across engines: serving-engine-axis
/// coverage (incl. the default engine, whose rows double as the
/// byte-level pin of FCFS+LRU at fabric scope).
#[test]
fn golden_memory_pressure() {
    run_group("memory_pressure", memory_pressure_cells());
}

/// The disaggregation axis: both traffic shapes, colocated and split,
/// digested with the transfer and tier-migration counters appended.
/// The colo rows pin that a role-free fleet stays on the classical path
/// (zero transfers); the split rows pin the handoff pipeline itself.
#[test]
fn golden_disagg() {
    let mut cells: CellList = Vec::new();
    for wl in DisaggWorkload::ALL {
        for disagg in [false, true] {
            let tag = format!("{}/{}", wl.label(), if disagg { "split" } else { "colo" });
            cells.push((
                tag,
                Box::new(move |seed| disagg_scenario(wl, disagg, 0.5, seed)),
            ));
        }
    }
    compare_or_update(
        "disagg",
        &render_group_with("disagg", &cells, Instrument::None, disagg_row),
    );
}

/// Tracing is observation-only: re-running the memory-pressure group
/// with the span recorder attached must reproduce the committed digest
/// byte-for-byte. Read-only on purpose — `golden_memory_pressure` owns
/// the file, so this test never writes, even under `UPDATE_GOLDENS=1`
/// (it skips instead: the file may be mid-rewrite in a parallel test).
#[test]
fn golden_memory_pressure_traced_is_byte_identical() {
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        println!("skipping traced comparison while goldens are being refreshed");
        return;
    }
    let rendered = render_group(
        "memory_pressure",
        &memory_pressure_cells(),
        Instrument::Trace,
    );
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/memory_pressure.json");
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
    assert_eq!(
        expected, rendered,
        "attaching the trace recorder changed a run's digest — tracing must be observation-only"
    );
}

/// Telemetry is observation-only at *any* cadence: re-running the
/// memory-pressure group with the metrics plane sampling at two different
/// intervals must reproduce the committed digest byte-for-byte. The
/// telemetry tick only reads component state and feeds the registry, so
/// neither the extra scheduler entries nor the sampling rate may leak
/// into outcomes. Read-only like the traced gate above.
#[test]
fn golden_memory_pressure_telemetry_is_byte_identical_at_two_cadences() {
    if std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1") {
        println!("skipping telemetry comparison while goldens are being refreshed");
        return;
    }
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/memory_pressure.json");
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e})", path.display()));
    for interval in [SimDuration::from_secs(1), SimDuration::from_millis(100)] {
        let rendered = render_group(
            "memory_pressure",
            &memory_pressure_cells(),
            Instrument::Telemetry(interval),
        );
        assert_eq!(
            expected, rendered,
            "telemetry sampling every {interval:?} changed a run's digest — telemetry must be \
             observation-only"
        );
    }
}
