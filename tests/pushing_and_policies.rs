//! Cross-crate checks of the paper's two mechanism-level claims: the
//! selective-pushing ordering (Fig. 9) and policy behaviour under
//! heterogeneous ToT traffic (Fig. 8d).

use skywalker::core::{PolicyKind, PushMode, RoutingConstraint};
use skywalker::fabric::Deployment;
use skywalker::{fig8_scenario, Workload};
use skywalker::{fig9_scenario, run_scenario, FabricConfig, SystemKind};

fn fig9_run(push: PushMode, clients: u32) -> skywalker::RunSummary {
    let scenario = fig9_scenario(SystemKind::SglRouter, 4, clients, 33).with_deployment(
        Deployment::PerRegion {
            policy: PolicyKind::CacheAware,
            push,
            forward: false,
            tau: 4,
            constraint: RoutingConstraint::Unrestricted,
        },
    );
    run_scenario(&scenario, &FabricConfig::default())
}

#[test]
fn sp_p_holds_work_at_the_balancer_instead_of_replica_queues() {
    // The structural difference under saturation: BP never queues at the
    // balancer (everything piles into replica pending queues), SP-P does
    // the opposite.
    let bp = fig9_run(PushMode::Blind, 100);
    let spp = fig9_run(PushMode::Pending, 100);
    // BP drains its queue in the same event it fills; SP-P accumulates a
    // real backlog while every replica reports a full batch.
    assert!(
        spp.peak_lb_queue > 4 * bp.peak_lb_queue.max(1),
        "SP-P must hold overflow at the LB under saturation ({} vs {})",
        spp.peak_lb_queue,
        bp.peak_lb_queue
    );
    // And SP-P must not pay for that with median latency.
    assert!(
        spp.report.ttft.p50 <= bp.report.ttft.p50 * 1.10,
        "SP-P p50 {:.2}s vs BP p50 {:.2}s",
        spp.report.ttft.p50,
        bp.report.ttft.p50
    );
    assert!(
        spp.report.throughput_tps >= bp.report.throughput_tps * 0.85,
        "SP-P must stay within throughput noise ({:.0} vs {:.0})",
        spp.report.throughput_tps,
        bp.report.throughput_tps
    );
}

#[test]
fn sp_p_beats_fixed_outstanding_cap_on_throughput() {
    // An over-conservative cap leaves replicas idle; SP-P adapts.
    let spo = fig9_run(PushMode::Outstanding { max: 2 }, 24);
    let spp = fig9_run(PushMode::Pending, 24);
    assert!(
        spp.report.throughput_tps > spo.report.throughput_tps,
        "SP-P {:.0} tok/s vs SP-O(2) {:.0} tok/s",
        spp.report.throughput_tps,
        spo.report.throughput_tps
    );
}

#[test]
fn blind_pushing_overcommits_replicas() {
    // BP's worst replica carries far more outstanding work than SP-P
    // allows anywhere (SP-P caps outstanding near the admissible batch).
    let bp = fig9_run(PushMode::Blind, 100);
    let spp = fig9_run(PushMode::Pending, 100);
    let bp_worst = bp.peak_outstanding.iter().copied().max().unwrap_or(0);
    let spp_worst = spp.peak_outstanding.iter().copied().max().unwrap_or(0);
    assert!(
        bp_worst > spp_worst,
        "BP worst replica {bp_worst} outstanding vs SP-P {spp_worst}"
    );
}

#[test]
fn mixed_trees_punish_pure_consistent_hashing() {
    // Fig. 8d: heavy 4-branch trees under CH overload the owning replica.
    let ch = run_scenario(
        &fig8_scenario(SystemKind::ConsistentHash, Workload::MixedTree, 0.15, 35),
        &FabricConfig::default(),
    );
    let sw = run_scenario(
        &fig8_scenario(SystemKind::SkyWalker, Workload::MixedTree, 0.15, 35),
        &FabricConfig::default(),
    );
    assert!(
        sw.report.e2e.p90 <= ch.report.e2e.p90,
        "SkyWalker p90 E2E {:.2}s vs CH {:.2}s",
        sw.report.e2e.p90,
        ch.report.e2e.p90
    );
}

#[test]
fn uniform_trees_let_ch_match_skywalker() {
    // Fig. 8c: on uniform ToT, CH's whole-tree affinity is near optimal —
    // SkyWalker need not win, but must stay within a few percent.
    let ch = run_scenario(
        &fig8_scenario(SystemKind::SkyWalkerCh, Workload::Tot, 0.15, 37),
        &FabricConfig::default(),
    );
    let sw = run_scenario(
        &fig8_scenario(SystemKind::SkyWalker, Workload::Tot, 0.15, 37),
        &FabricConfig::default(),
    );
    let ratio = sw.report.throughput_tps / ch.report.throughput_tps;
    assert!(
        ratio > 0.85,
        "SkyWalker must stay competitive on uniform trees (ratio {ratio:.2})"
    );
}
