//! The reproducibility contract, asserted dynamically: running the same
//! preset twice in one process — and again through the lab's parallel
//! executor — must produce byte-identical metric digests. This is the
//! runtime complement of `skywalker-lint` (which enforces the same
//! contract statically) and of `tests/golden_digests.rs` (which pins
//! digests *across* builds): here we pin them *within* a build, where a
//! violation points at ambient state rather than intended change.

use skywalker::sim::SimDuration;
use skywalker::{
    disagg_recipe, disagg_scenario, diurnal_recipe, fig10_diurnal_scenario, fig8_recipe,
    fig8_scenario, memory_pressure_scenario, run_scenario, DisaggWorkload, EngineSpec,
    FabricConfig, RunSummary, Scenario, SystemKind, Workload,
};
use skywalker_lab::SweepSpec;
use skywalker_metrics::json::{Report, Val};

/// Renders one run's aggregates as a stable JSON document. Every field
/// that feeds the golden digests is included, so equality here means
/// equality there.
fn digest(tag: &str, seed: u64, s: &RunSummary) -> String {
    let r = &s.report;
    let mut rep = Report::new(format!("double_run_{tag}"));
    rep.row(&[
        ("seed", Val::from(seed)),
        ("label", Val::from(s.label.clone())),
        ("engine", Val::from(s.engine_label.clone())),
        ("completed", Val::from(r.completed)),
        ("failed", Val::from(r.failed)),
        ("retried", Val::from(r.retried)),
        ("in_flight", Val::from(r.in_flight)),
        ("prompt_tokens", Val::from(r.prompt_tokens)),
        ("cached_prompt_tokens", Val::from(r.cached_prompt_tokens)),
        ("generated_tokens", Val::from(r.generated_tokens)),
        ("tok_s", Val::from(r.throughput_tps)),
        ("client_hit_rate", Val::from(r.cache_hit_rate)),
        ("replica_hit_rate", Val::from(s.replica_hit_rate)),
        ("ttft_p50_s", Val::from(r.ttft.p50)),
        ("ttft_p90_s", Val::from(r.ttft.p90)),
        ("ttft_mean_s", Val::from(r.ttft.mean)),
        ("e2e_p50_s", Val::from(r.e2e.p50)),
        ("e2e_p90_s", Val::from(r.e2e.p90)),
        ("end_time_s", Val::from(s.end_time.as_secs_f64())),
        ("forwarded", Val::from(s.forwarded)),
        ("peak_lb_queue", Val::from(s.peak_lb_queue)),
        ("dispatch_imbalance", Val::from(s.dispatch_imbalance)),
        ("preempted", Val::from(s.preempted)),
        ("evicted_tokens", Val::from(s.evicted_tokens)),
        ("demoted_tokens", Val::from(s.demoted_tokens)),
        ("promoted_tokens", Val::from(s.promoted_tokens)),
        ("kv_transfers", Val::from(s.transfers.started)),
        ("kv_transfer_tokens", Val::from(s.transfers.tokens_sent)),
        ("fleet_crashes", Val::from(s.fleet.crashes)),
    ]);
    rep.render()
}

fn assert_double_run(tag: &str, build: impl Fn(u64) -> Scenario) {
    for seed in [1u64, 7] {
        let cfg = FabricConfig {
            seed,
            ..FabricConfig::default()
        };
        let first = digest(tag, seed, &run_scenario(&build(seed), &cfg));
        let second = digest(tag, seed, &run_scenario(&build(seed), &cfg));
        assert_eq!(
            first, second,
            "{tag}/seed {seed}: two in-process runs diverged — ambient state leaked into the sim"
        );
    }
}

#[test]
fn fig8_preset_is_stable_across_reruns() {
    assert_double_run("fig8", |seed| {
        fig8_scenario(SystemKind::SkyWalker, Workload::Tot, 0.02, seed)
    });
}

#[test]
fn memory_pressure_preset_is_stable_across_reruns() {
    assert_double_run("memory_pressure", |seed| {
        memory_pressure_scenario(EngineSpec::default(), 0.25, seed)
    });
}

/// The compressed diurnal day at the scale-curve's 0.25 point. The
/// perf pass rebuilt the hot paths this preset leans on (trie child
/// maps, engine batch drain, fabric scratch buffers), so it gets its
/// own in-process stability cell alongside the legacy presets.
#[test]
fn diurnal_preset_is_stable_across_reruns() {
    assert_double_run("diurnal_q25", |seed| {
        fig10_diurnal_scenario(SystemKind::SkyWalker, 2, DIURNAL_DAY, 0.25, seed)
    });
}

/// Sim-day length of the diurnal determinism cells: long enough to
/// cross several demand-curve segments, short enough for a debug-build
/// test run.
const DIURNAL_DAY: SimDuration = SimDuration::from_secs(120);

/// The disaggregated preset: prefill→decode handoffs add a whole event
/// family (`KvTransfer`) plus the two-tier cache's demote/promote
/// machinery, all of which must be as replayable as the classical path.
/// The digest includes the transfer and tier counters, so a
/// nondeterministic handoff cannot hide behind stable latencies.
#[test]
fn disagg_preset_is_stable_across_reruns() {
    assert_double_run("disagg", |seed| {
        disagg_scenario(DisaggWorkload::DecodeHeavy, true, 0.5, seed)
    });
}

/// The diurnal cell again, through the lab's parallel executor: worker
/// count must be invisible in the rendered sweep report.
#[test]
fn lab_diurnal_sweep_is_worker_count_invariant() {
    let sweep = || {
        SweepSpec::new("double-run-diurnal", 42).replicates(2).cell(
            "skywalker-diurnal-q25",
            diurnal_recipe(SystemKind::SkyWalker, 2, DIURNAL_DAY, 0.25),
        )
    };
    let serial = sweep().run(1).report().json_string();
    let parallel = sweep().run(2).report().json_string();
    assert_eq!(
        serial, parallel,
        "diurnal sweep results must be bit-identical at any worker count"
    );
}

/// The role axis through the lab: a sweep mixing colocated and split
/// cells of both traffic shapes renders identically at any worker
/// count. Handoff scheduling rides the same deterministic event queue
/// as everything else, so thread placement must be invisible.
#[test]
fn lab_disagg_sweep_is_worker_count_invariant() {
    let sweep = || {
        let mut spec = SweepSpec::new("double-run-disagg", 42).replicates(2);
        for wl in DisaggWorkload::ALL {
            for disagg in [false, true] {
                let label = format!("{}/{}", wl.label(), if disagg { "split" } else { "colo" });
                spec = spec.cell(label, disagg_recipe(wl, disagg, 0.5));
            }
        }
        spec
    };
    let serial = sweep().run(1).report().json_string();
    let parallel = sweep().run(2).report().json_string();
    assert_eq!(
        serial, parallel,
        "disagg sweep results must be bit-identical at any worker count"
    );
}

/// The lab's slot-addressed pool must be invisible in the results: the
/// same sweep at 1 worker and at 2 workers renders the same JSON.
#[test]
fn lab_sweep_is_worker_count_invariant() {
    let sweep = || {
        SweepSpec::new("double-run", 42)
            .replicates(2)
            .cell(
                "skywalker-tot",
                fig8_recipe(SystemKind::SkyWalker, Workload::Tot, 0.02),
            )
            .cell(
                "least-load-tot",
                fig8_recipe(SystemKind::LeastLoad, Workload::Tot, 0.02),
            )
    };
    let serial = sweep().run(1).report().json_string();
    let parallel = sweep().run(2).report().json_string();
    assert_eq!(
        serial, parallel,
        "sweep results must be bit-identical at any worker count"
    );
}
