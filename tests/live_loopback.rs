//! Live-mode loopback: the full TCP topology (clients → balancers →
//! replicas, with LB-to-LB peering) on localhost, exercising the same
//! core logic the simulator verifies — but through real sockets and real
//! threads.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use skywalker::core::{BalancerConfig, LbId};
use skywalker::net::Region;
use skywalker::replica::{GpuProfile, ReplicaId, Request};
use skywalker_live::{scrape_metrics, BalancerServer, LiveClient, ReplicaServer};

const FAST: f64 = 0.001; // 1000× faster than real time

#[test]
fn three_region_topology_serves_and_forwards() {
    // Three balancers; only two have replicas. Traffic to the empty one
    // must forward and complete.
    let replicas: Vec<ReplicaServer> = (0..4)
        .map(|i| ReplicaServer::spawn(ReplicaId(i), GpuProfile::L4_LLAMA_8B, FAST).unwrap())
        .collect();
    let regions = [Region::UsEast, Region::EuWest, Region::ApNortheast];
    let lbs: Vec<BalancerServer> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| {
            BalancerServer::spawn(
                LbId(i as u32),
                BalancerConfig::skywalker(*r),
                Duration::from_millis(10),
            )
            .unwrap()
        })
        .collect();
    // us gets replicas 0-1, eu gets 2-3, ap gets none.
    lbs[0]
        .attach_replica(ReplicaId(0), replicas[0].addr())
        .unwrap();
    lbs[0]
        .attach_replica(ReplicaId(1), replicas[1].addr())
        .unwrap();
    lbs[1]
        .attach_replica(ReplicaId(2), replicas[2].addr())
        .unwrap();
    lbs[1]
        .attach_replica(ReplicaId(3), replicas[3].addr())
        .unwrap();
    for i in 0..3 {
        for j in 0..3 {
            if i != j {
                lbs[i]
                    .connect_peer(LbId(j as u32), regions[j], lbs[j].addr())
                    .unwrap();
            }
        }
    }
    std::thread::sleep(Duration::from_millis(120)); // let probes settle

    // Local request to a balancer that has replicas.
    let mut us_client = LiveClient::connect(lbs[0].addr()).unwrap();
    let out = us_client
        .run(&Request::new(1, "us-user", (0..128).collect(), 16))
        .unwrap();
    assert_eq!(out.generated, 16);

    // Request to the replica-less balancer: must forward, not fail.
    let mut ap_client = LiveClient::connect(lbs[2].addr()).unwrap();
    let out = ap_client
        .run(&Request::new(2, "ap-user", (500..700).collect(), 8))
        .unwrap();
    assert_eq!(out.generated, 8);
    assert!(lbs[2].forwarded() >= 1);

    for lb in lbs {
        lb.shutdown();
    }
    for r in replicas {
        r.shutdown();
    }
}

#[test]
fn session_affinity_warms_caches_over_the_wire() {
    let r0 = ReplicaServer::spawn(ReplicaId(0), GpuProfile::L4_LLAMA_8B, FAST).unwrap();
    let r1 = ReplicaServer::spawn(ReplicaId(1), GpuProfile::L4_LLAMA_8B, FAST).unwrap();
    let lb = BalancerServer::spawn(
        LbId(0),
        BalancerConfig::skywalker_ch(Region::UsEast),
        Duration::from_millis(10),
    )
    .unwrap();
    lb.attach_replica(ReplicaId(0), r0.addr()).unwrap();
    lb.attach_replica(ReplicaId(1), r1.addr()).unwrap();

    // A three-turn "conversation": each turn extends the previous prompt.
    let mut client = LiveClient::connect(lb.addr()).unwrap();
    let mut prompt: Vec<u32> = (0..200).collect();
    let mut cached_last = 0;
    for (i, turn) in (0..3u64).enumerate() {
        let out = client
            .run(&Request::new(10 + turn, "user-7/conv-0", prompt.clone(), 8))
            .unwrap();
        if i > 0 {
            assert!(
                out.cached_prompt_tokens > cached_last,
                "turn {i} cached {} tokens",
                out.cached_prompt_tokens
            );
        }
        cached_last = out.cached_prompt_tokens;
        prompt.extend((0..50).map(|k| 10_000 + turn as u32 * 100 + k));
    }

    lb.shutdown();
    r0.shutdown();
    r1.shutdown();
}

#[test]
fn balancer_queues_when_replicas_are_full() {
    // One tiny-capacity replica; a slow long request occupies it while a
    // burst arrives. With SP-P the burst waits at the balancer and all
    // requests still complete.
    let r0 = ReplicaServer::spawn(ReplicaId(0), GpuProfile::L4_LLAMA_8B, FAST).unwrap();
    let lb = BalancerServer::spawn(
        LbId(0),
        BalancerConfig::skywalker(Region::UsEast),
        Duration::from_millis(5),
    )
    .unwrap();
    lb.attach_replica(ReplicaId(0), r0.addr()).unwrap();

    let addr = lb.addr();
    let handles: Vec<_> = (0..6u64)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = LiveClient::connect(addr).unwrap();
                c.run(&Request::new(
                    100 + i,
                    format!("u{i}"),
                    vec![i as u32; 4000],
                    64,
                ))
                .unwrap()
                .generated
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 64);
    }
    lb.shutdown();
    r0.shutdown();
}

/// Parses a Prometheus text exposition into (name, labels, value) sample
/// lines, panicking on anything malformed — the test's stand-in for a
/// real scraper.
fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line has a metric name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown TYPE {kind} for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (key, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().expect("sample value parses as f64");
        samples.push((key.to_string(), value));
    }
    samples
}

#[test]
fn metrics_scrape_over_the_wire() {
    let r0 = ReplicaServer::spawn(ReplicaId(0), GpuProfile::L4_LLAMA_8B, FAST).unwrap();
    let lb = BalancerServer::spawn(
        LbId(0),
        BalancerConfig::skywalker(Region::UsEast),
        Duration::from_millis(10),
    )
    .unwrap();
    lb.attach_replica(ReplicaId(0), r0.addr()).unwrap();

    // Serve some traffic so the counters are nonzero.
    let mut client = LiveClient::connect(lb.addr()).unwrap();
    for i in 0..3u64 {
        let out = client
            .run(&Request::new(i, format!("u{i}"), (0..64).collect(), 8))
            .unwrap();
        assert_eq!(out.generated, 8);
    }

    // Framed scrape of the balancer: parses, is deterministically
    // ordered, and agrees with the server's own accounting.
    let lb_text = scrape_metrics(lb.addr()).unwrap();
    let samples = parse_exposition(&lb_text);
    assert!(!samples.is_empty());
    let mut keys: Vec<&String> = samples.iter().map(|(k, _)| k).collect();
    keys.dedup();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "samples must arrive in sorted order");
    let received = samples
        .iter()
        .find(|(k, _)| k.starts_with("skywalker_lb_received_total"))
        .expect("balancer exposes the received counter");
    assert_eq!(received.1, 3.0);
    let forwarded = samples
        .iter()
        .find(|(k, _)| k.starts_with("skywalker_lb_forwarded_total"))
        .expect("balancer exposes the forwarded counter");
    assert_eq!(forwarded.1, lb.forwarded() as f64);
    assert!(lb_text.contains(r#"region="us-east-1""#));

    // Scraping twice is stable modulo values: same keys, same order.
    let again = parse_exposition(&scrape_metrics(lb.addr()).unwrap());
    assert_eq!(
        samples.iter().map(|(k, _)| k).collect::<Vec<_>>(),
        again.iter().map(|(k, _)| k).collect::<Vec<_>>(),
    );

    // Framed scrape of the replica.
    let rep_samples = parse_exposition(&scrape_metrics(r0.addr()).unwrap());
    let completed = rep_samples
        .iter()
        .find(|(k, _)| k.starts_with("skywalker_replica_completed_total"))
        .expect("replica exposes the completed counter");
    assert_eq!(completed.1, 3.0);

    // ASCII scrape: what `nc` or `curl` would see.
    let mut raw = TcpStream::connect(lb.addr()).unwrap();
    raw.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
    let mut response = String::new();
    raw.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"));
    let body = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split")
        .1;
    assert_eq!(parse_exposition(body).len(), samples.len());

    lb.shutdown();
    r0.shutdown();
}
