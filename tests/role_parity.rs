//! The tentpole's backward-compatibility pin, asserted at fleet scope:
//! a scenario whose every replica is explicitly [`ReplicaRole::Colocated`]
//! must reproduce the pre-role fabric (`roles: vec![]`) *exactly* — same
//! timeline, same counters, same latency histograms — across 100+ seeded
//! workloads spanning the preset families. The role axis is an addition,
//! not a perturbation: if an explicit colocated fleet drifts by a single
//! microsecond anywhere, the disaggregation machinery has leaked into
//! the classical path.

use skywalker::{
    disagg_scenario, fig8_scenario, memory_pressure_scenario, run_scenario, DisaggWorkload,
    EngineSpec, FabricConfig, ReplicaRole, RunSummary, Scenario, SystemKind, Workload,
};

/// Every observable a golden digest carries, flattened to one string.
/// Debug-formatting the integers and bit-exact floats means equality
/// here is equality of the run, not of a rounded view.
fn digest(s: &RunSummary) -> String {
    let r = &s.report;
    format!(
        "label={} engine={} end={:?} completed={} failed={} retried={} in_flight={} \
         prompt={} cached={} generated={} forwarded={} peak_q={} imbalance={:?} \
         preempted={} evicted={} demoted={} promoted={} transfers={:?} chunked={} \
         ttft=({:?},{:?},{:?}) e2e=({:?},{:?}) hit={:?} fleet=({},{},{:?})",
        s.label,
        s.engine_label,
        s.end_time,
        r.completed,
        r.failed,
        r.retried,
        r.in_flight,
        r.prompt_tokens,
        r.cached_prompt_tokens,
        r.generated_tokens,
        s.forwarded,
        s.peak_lb_queue,
        s.dispatch_imbalance,
        s.preempted,
        s.evicted_tokens,
        s.demoted_tokens,
        s.promoted_tokens,
        s.transfers,
        s.chunked_steps,
        r.ttft.p50,
        r.ttft.p90,
        r.ttft.mean,
        r.e2e.p50,
        r.e2e.p90,
        s.replica_hit_rate,
        s.fleet.joins,
        s.fleet.crashes,
        s.fleet.mean_total(),
    )
}

/// Race the role-free scenario against its explicitly-colocated twin.
fn assert_role_parity(tag: &str, seed: u64, build: impl Fn(u64) -> Scenario) {
    let cfg = FabricConfig {
        seed,
        ..FabricConfig::default()
    };
    let bare = build(seed);
    assert!(
        bare.roles.is_empty(),
        "{tag}/seed {seed}: parity baseline must be the pre-role scenario"
    );
    let mut explicit = build(seed);
    explicit.roles = vec![ReplicaRole::Colocated; explicit.replicas.len()];

    let a = digest(&run_scenario(&bare, &cfg));
    let b = digest(&run_scenario(&explicit, &cfg));
    assert_eq!(
        a, b,
        "{tag}/seed {seed}: explicit Colocated roles diverged from the role-free fabric"
    );
}

/// 104 seeded workloads: the fig8 preset over all four paper workloads
/// and both routing extremes, the memory-pressure engine preset, and
/// the disagg preset's colocated arm (the one whose byte-identity the
/// tentpole promises).
#[test]
fn explicit_colocated_roles_match_the_pre_role_fabric() {
    for seed in 0..48 {
        let workload = Workload::ALL[(seed % 4) as usize];
        let system = if seed % 2 == 0 {
            SystemKind::SkyWalker
        } else {
            SystemKind::RoundRobin
        };
        assert_role_parity("fig8", seed, |s| fig8_scenario(system, workload, 0.02, s));
    }
    for seed in 0..24 {
        assert_role_parity("memory_pressure", seed, |s| {
            memory_pressure_scenario(EngineSpec::default(), 0.25, s)
        });
    }
    for seed in 0..32 {
        let workload = DisaggWorkload::ALL[(seed % 2) as usize];
        assert_role_parity("disagg-colo", seed, |s| {
            disagg_scenario(workload, false, 0.5, s)
        });
    }
}
