//! Request-accounting conservation across the paths that can lose work:
//! chaos crashes (`fail_all` + reroute), autoscaler churn (joins and
//! drains mid-run), and serving-engine pressure (eviction refusals,
//! preemption, oversized drops).
//!
//! The law under test, for every run that drains its (finite) source:
//!
//! ```text
//! injected == completed + failed + in-flight-at-end
//! retried  <= injected
//! ```
//!
//! where `injected` is the total request count the traffic source
//! generates — computed independently by materializing a clone of the
//! source, so the fabric cannot grade its own homework. Crash, preempt,
//! and evict paths each open a different accounting gap if they drop a
//! lease or a tracker record; this suite closes all three.

use skywalker::sim::{SimDuration, SimTime};
use skywalker::{
    balanced_fleet, disagg_scenario, lite_fleet, memory_pressure_scenario, run_scenario,
    workload_clients, AutoscalerConfig, BatchPlan, BatchPolicy, ChaosConfig, ChaosPlan,
    DisaggWorkload, EngineSpec, FabricConfig, FcfsBatch, FlashCrowdSource, LruEvictor, NoEvict,
    PrefixAwareEvictor, RunSummary, Scenario, ShortestPromptFirst, StepView, SystemKind,
    ThresholdAutoscaler, Workload, L4_LITE, REGIONS,
};

/// Independently materializes the scenario's traffic and counts every
/// request it will ever inject. Only valid for finite sources.
fn injected(scenario: &Scenario) -> u64 {
    scenario
        .clients_until(SimTime::MAX)
        .iter()
        .map(|c| c.total_requests() as u64)
        .sum()
}

fn assert_conserved(tag: &str, expected: u64, s: &RunSummary) {
    let accounted = s.report.completed + s.report.failed + s.report.in_flight;
    assert_eq!(
        accounted, expected,
        "{tag}: injected {expected} != completed {} + failed {} + in-flight {}",
        s.report.completed, s.report.failed, s.report.in_flight
    );
    assert!(
        s.report.retried <= expected,
        "{tag}: retried {} exceeds injected {expected}",
        s.report.retried
    );
}

/// Chaos churn: crashes fail or reroute in-flight work; nothing may
/// vanish from the ledger, under the default engine *and* a preemptive
/// one (crash-during-preemption is the nastiest interleaving).
#[test]
fn chaos_runs_conserve_requests() {
    for (tag, engine) in [
        ("chaos/default", EngineSpec::default()),
        (
            "chaos/preemptive",
            EngineSpec::new(
                Box::new(FcfsBatch::new().with_preemption(0.9)),
                Box::new(LruEvictor),
            ),
        ),
    ] {
        let seed = 47;
        let chaos = ChaosPlan::new(
            ChaosConfig {
                mtbf: SimDuration::from_secs(25),
                mttr: SimDuration::from_secs(15),
                min_live_per_region: 1,
                ..ChaosConfig::default()
            },
            seed,
        );
        let scenario = SystemKind::SkyWalker
            .builder()
            .replicas(balanced_fleet())
            .clients(workload_clients(Workload::WildChat, 0.1, seed))
            .fleet_plan(Box::new(chaos))
            .engine(engine)
            .build()
            .expect("fleet and clients are set");
        let expected = injected(&scenario);
        assert!(expected > 0);
        let s = run_scenario(&scenario, &FabricConfig::default());
        assert_conserved(tag, expected, &s);
    }
}

/// Autoscaler churn: a flash crowd forces scale-out then scale-in;
/// joins and drains must not strand or duplicate requests.
#[test]
fn autoscaler_run_conserves_requests() {
    let seed = 11;
    let source = FlashCrowdSource::new(
        vec![(REGIONS[0], 2), (REGIONS[1], 2)],
        REGIONS[0],
        12,
        SimTime::from_secs(10),
        seed,
    );
    let autoscaler = ThresholdAutoscaler::new(AutoscalerConfig {
        min_per_region: 1,
        max_per_region: 5,
        scale_out_load: 2.0,
        scale_in_load: 0.5,
        cooldown: SimDuration::from_secs(10),
        provision_delay: SimDuration::from_secs(5),
        profile: L4_LITE,
    });
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(lite_fleet(&[(REGIONS[0], 1), (REGIONS[1], 1)]))
        .traffic_source(Box::new(source))
        .fleet_plan(Box::new(autoscaler))
        .build()
        .expect("fleet and traffic are set");
    let expected = injected(&scenario);
    assert!(expected > 0);
    let s = run_scenario(&scenario, &FabricConfig::default());
    assert!(
        s.fleet.joins > 0,
        "flash crowd should have forced a scale-out (joins = 0)"
    );
    assert_conserved("autoscaler/flash-crowd", expected, &s);
}

/// A pathological external policy: periodically preempts the *entire*
/// batch and admits nothing, producing the zero-duration,
/// batch-emptying steps that must read as progress (requeued work),
/// never as a stuck pending head the fabric may fail. Storms are
/// spaced wider than the longest decode (preemption discards generated
/// output, so a storm cadence shorter than the output length would
/// legitimately starve completion — policy pathology, not an
/// accounting bug).
#[derive(Debug, Clone)]
struct PreemptStorm {
    calls: u64,
}

impl BatchPolicy for PreemptStorm {
    fn plan(&mut self, view: &StepView<'_>) -> BatchPlan {
        self.calls += 1;
        let mut plan = BatchPlan::fcfs(view.pending.len());
        if self.calls.is_multiple_of(400) && !view.running.is_empty() {
            plan.admit_order.clear();
            plan.preempt = (0..view.running.len()).collect();
        }
        plan
    }

    fn label(&self) -> String {
        "preempt-storm".to_string()
    }
}

/// Whole-batch preemption storms through the fabric: every preempted
/// request is requeued and served — nothing is spuriously failed, and
/// the ledger still balances.
#[test]
fn preempt_storm_conserves_and_fails_nothing() {
    let engine = EngineSpec::new(Box::new(PreemptStorm { calls: 0 }), Box::new(LruEvictor));
    let scenario = memory_pressure_scenario(engine, 0.25, 9);
    let expected = injected(&scenario);
    let s = run_scenario(&scenario, &FabricConfig::default());
    assert!(s.preempted > 0, "the storm must actually preempt");
    assert_eq!(
        s.report.failed, 0,
        "a preempted-and-requeued request must never be counted failed"
    );
    assert_conserved("preempt-storm", expected, &s);
    assert_eq!(s.report.completed, expected);
}

/// Engine pressure: every serving engine — including the one that
/// refuses eviction and therefore *fails* work — accounts for each
/// injected request exactly once.
#[test]
fn memory_pressure_engines_conserve_requests() {
    let engines = [
        ("mp/default", EngineSpec::default()),
        (
            "mp/chunked",
            EngineSpec::new(Box::new(FcfsBatch::chunked(64)), Box::new(LruEvictor)),
        ),
        (
            "mp/preemptive",
            EngineSpec::new(
                Box::new(FcfsBatch::new().with_preemption(0.9)),
                Box::new(LruEvictor),
            ),
        ),
        (
            "mp/sjf-prefix",
            EngineSpec::new(
                Box::new(ShortestPromptFirst::new()),
                Box::new(PrefixAwareEvictor),
            ),
        ),
        (
            "mp/noevict",
            EngineSpec::new(Box::new(FcfsBatch::new()), Box::new(NoEvict)),
        ),
    ];
    let mut failures_seen = 0u64;
    let mut preemptions_seen = 0u64;
    for (tag, engine) in engines {
        let scenario = memory_pressure_scenario(engine, 0.4, 3);
        let expected = injected(&scenario);
        assert!(expected > 0);
        let s = run_scenario(&scenario, &FabricConfig::default());
        assert_conserved(tag, expected, &s);
        failures_seen += s.report.failed;
        preemptions_seen += s.preempted;
    }
    // The suite only proves something if the lossy paths actually ran.
    assert!(
        failures_seen > 0,
        "no engine failed work — the eviction-refusal path went unexercised"
    );
    assert!(
        preemptions_seen > 0,
        "no engine preempted — the preemption path went unexercised"
    );
}

/// The role-aware half of the ledger: KV handoffs between prefill and
/// decode replicas conserve both the handoff count and every
/// transferred token. A drained run leaves nothing on the wire.
fn assert_transfers_conserved(tag: &str, s: &RunSummary) {
    let t = &s.transfers;
    assert_eq!(
        t.started,
        t.landed + t.aborted,
        "{tag}: started {} != landed {} + aborted {} (+ in-transfer {})",
        t.started,
        t.landed,
        t.aborted,
        t.in_transfer()
    );
    assert_eq!(
        t.tokens_sent,
        t.tokens_landed + t.tokens_aborted,
        "{tag}: transferred tokens leak across the handoff boundary \
         (sent {}, landed {}, aborted {})",
        t.tokens_sent,
        t.tokens_landed,
        t.tokens_aborted
    );
    assert_eq!(
        t.in_transfer(),
        0,
        "{tag}: drained run left handoffs in flight"
    );
    assert_eq!(
        t.tokens_in_transfer(),
        0,
        "{tag}: drained run left tokens in flight"
    );
}

/// Disaggregated runs obey the same request ledger as colocated ones —
/// every injected request is completed, failed, or in flight at the end
/// — plus the transfer ledger on top. Both traffic shapes, both modes.
#[test]
fn disagg_runs_conserve_requests_and_transfers() {
    for workload in DisaggWorkload::ALL {
        for disagg in [false, true] {
            for seed in [3u64, 19] {
                let scenario = disagg_scenario(workload, disagg, 0.5, seed);
                let tag = format!("{}/seed{seed}", scenario.label);
                let expected = injected(&scenario);
                assert!(expected > 0);
                let s = run_scenario(&scenario, &FabricConfig::default());
                assert_conserved(&tag, expected, &s);
                assert_transfers_conserved(&tag, &s);
                if disagg {
                    assert!(
                        s.transfers.started > 0,
                        "{tag}: split mode never handed off"
                    );
                } else {
                    assert_eq!(s.transfers.started, 0, "{tag}: colocated mode handed off");
                }
            }
        }
    }
}

/// Chaos over a disaggregated fleet: crashes land on prefill replicas
/// mid-handoff and on decode replicas with transfers inbound. A
/// casualty is rerouted once or counted failed — never stranded — and
/// the transfer ledger still balances token for token.
#[test]
fn disagg_chaos_conserves_requests_and_transfers() {
    let mut crashes_seen = 0u64;
    let mut casualties_seen = 0u64;
    for seed in [5u64, 23, 61] {
        let mut scenario = disagg_scenario(DisaggWorkload::DecodeHeavy, true, 0.5, seed);
        scenario.fleet_plan = Some(Box::new(ChaosPlan::new(
            ChaosConfig {
                mtbf: SimDuration::from_secs(20),
                mttr: SimDuration::from_secs(15),
                min_live_per_region: 1,
                ..ChaosConfig::default()
            },
            seed,
        )));
        scenario.label = format!("disagg/chaos/seed{seed}");
        let expected = injected(&scenario);
        assert!(expected > 0);
        let s = run_scenario(&scenario, &FabricConfig::default());
        assert_conserved(&scenario.label, expected, &s);
        assert_transfers_conserved(&scenario.label, &s);
        crashes_seen += s.fleet.crashes;
        casualties_seen += s.report.retried + s.report.failed + s.transfers.aborted;
    }
    assert!(crashes_seen > 0, "chaos never crashed a replica");
    assert!(
        casualties_seen > 0,
        "no crash ever caught a request in flight — the reroute path went unexercised"
    );
}

/// Autoscaling over a role-split fleet: prefill-heavy traffic saturates
/// the two prefill replicas, the balancer queue grows, and the reactive
/// autoscaler joins fresh *colocated* replicas (the fleet-plan
/// vocabulary has no role axis) — which also become decode targets.
/// The request and transfer ledgers balance through the churn.
#[test]
fn disagg_autoscaler_run_conserves_requests_and_transfers() {
    let seed = 31;
    let mut scenario = disagg_scenario(DisaggWorkload::PrefillHeavy, true, 1.5, seed);
    // `scale_in_load: 0.0` keeps the pre-burst idle poll from draining
    // a replica and burning the cooldown window the burst needs; the
    // drain path is covered by `autoscaler_run_conserves_requests`.
    scenario.fleet_plan = Some(Box::new(ThresholdAutoscaler::new(AutoscalerConfig {
        min_per_region: 2,
        max_per_region: 8,
        scale_out_load: 1.5,
        scale_in_load: 0.0,
        cooldown: SimDuration::from_secs(10),
        provision_delay: SimDuration::from_secs(5),
        profile: L4_LITE,
    })));
    scenario.label = "disagg/autoscale".to_string();
    let expected = injected(&scenario);
    assert!(expected > 0);
    let s = run_scenario(&scenario, &FabricConfig::default());
    assert!(
        s.fleet.joins > 0,
        "prefill saturation should have forced a scale-out (joins = 0)"
    );
    assert!(s.transfers.started > 0, "the split fleet never handed off");
    assert_conserved("disagg/autoscale", expected, &s);
    assert_transfers_conserved("disagg/autoscale", &s);
}
