//! End-to-end exercises of the elastic fleet control plane: scripted
//! join/drain lifecycles, chaos churn with full request accounting, and
//! the headline elasticity result — a reactive autoscaler tracking the
//! Fig. 10 diurnal day beats the equal-cost static fleet on P90 TTFT.

use skywalker::replica::{GpuProfile, ReplicaId};
use skywalker::sim::{SimDuration, SimTime};
use skywalker::{
    balanced_fleet, diurnal_reference_predictive, diurnal_reference_reactive,
    equal_cost_lite_fleet, fig10_diurnal_scenario, l4_fleet, run_scenario, trio_diurnal_profiles,
    workload_clients, AutoscalerConfig, ChaosConfig, ChaosPlan, FabricConfig, FaultEvent,
    FleetCommand, FleetEvent, PredictiveAutoscaler, RunSummary, ScheduledPlan, SystemKind,
    ThresholdAutoscaler, Workload, REGIONS,
};

fn expected_requests(scale: f64, seed: u64) -> usize {
    workload_clients(Workload::WildChat, scale, seed)
        .iter()
        .map(|c| c.total_requests())
        .sum()
}

fn accounted(s: &RunSummary) -> u64 {
    s.report.completed + s.report.failed + s.report.in_flight
}

#[test]
fn scheduled_join_and_drain_lifecycle() {
    let seed = 41;
    let clients = workload_clients(Workload::WildChat, 0.1, seed);
    let expected: usize = clients.iter().map(|c| c.total_requests()).sum();
    let plan = ScheduledPlan::new(vec![
        FleetCommand::new(
            SimTime::from_secs(5),
            FleetEvent::ReplicaJoin {
                region: REGIONS[1],
                profile: GpuProfile::L4_LLAMA_8B,
            },
        ),
        FleetCommand::new(
            SimTime::from_secs(20),
            FleetEvent::ReplicaDrain {
                replica: ReplicaId(0),
            },
        ),
    ]);
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients)
        .fleet_plan(Box::new(plan))
        .build()
        .expect("valid scenario");
    let s = run_scenario(&scenario, &FabricConfig::default());

    assert_eq!(accounted(&s) as usize, expected, "no request may vanish");
    assert_eq!(s.report.in_flight, 0, "run must drain");
    assert_eq!((s.fleet.joins, s.fleet.drains, s.fleet.crashes), (1, 1, 0));
    assert!(s.fleet.is_elastic());
    // 12 replicas to start, one joined, one drained.
    assert_eq!(s.fleet.final_replicas, 12);
    // The join shows in EU's trace (4 → 5) and the drain (of a US
    // replica, id 0) in US's trace (4 → 3).
    let eu = s.fleet.series(REGIONS[1]).expect("EU trace");
    assert_eq!(eu.peak(), 5.0);
    let us = s.fleet.series(REGIONS[0]).expect("US trace");
    assert_eq!(us.points().last().unwrap().1, 3.0);
    // The joined replica (id 12) materialized as a first-class member:
    // it has stats and a probed KV trace. (Whether it *serves* under a
    // light closed-loop load is the affinity policy's call — a fresh
    // empty cache attracts work only when the warmed replicas fill up.)
    assert_eq!(s.replica_stats.len(), 13);
    assert!(!s.kv_series[12].is_empty(), "joined replica must be probed");
}

#[test]
fn crash_reroutes_once_then_fails() {
    let seed = 43;
    let clients = workload_clients(Workload::WildChat, 0.1, seed);
    let expected: usize = clients.iter().map(|c| c.total_requests()).sum();
    // Crash one replica mid-run; its in-flight work reroutes.
    let plan = ScheduledPlan::new(vec![FleetCommand::new(
        SimTime::from_secs(10),
        FleetEvent::ReplicaCrash {
            replica: ReplicaId(3),
        },
    )]);
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients)
        .fleet_plan(Box::new(plan))
        .build()
        .expect("valid scenario");
    let s = run_scenario(&scenario, &FabricConfig::default());
    assert_eq!(accounted(&s) as usize, expected);
    assert_eq!(s.report.in_flight, 0);
    assert_eq!(s.fleet.crashes, 1);
    assert_eq!(s.fleet.final_replicas, 11);
    // A single crash is fully absorbed: everything reroutes and
    // completes (failures need the *same* request to die twice).
    assert_eq!(s.report.completed as usize, expected);
    assert!(
        s.report.retried >= 1 || s.replica_stats[3].admitted == 0,
        "in-flight work at the crash must have rerouted"
    );
}

#[test]
fn chaos_churn_accounts_every_request() {
    let seed = 47;
    let expected = expected_requests(0.1, seed);
    let chaos = ChaosPlan::new(
        ChaosConfig {
            mtbf: SimDuration::from_secs(25),
            mttr: SimDuration::from_secs(15),
            min_live_per_region: 1,
            ..ChaosConfig::default()
        },
        seed,
    );
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(workload_clients(Workload::WildChat, 0.1, seed))
        .fleet_plan(Box::new(chaos))
        .build()
        .expect("valid scenario");
    let s = run_scenario(&scenario, &FabricConfig::default());

    // The acceptance bar: completed + failed + in-flight = issued.
    assert_eq!(
        accounted(&s) as usize,
        expected,
        "chaos must not lose or invent requests"
    );
    assert_eq!(s.report.in_flight, 0, "run must still drain under churn");
    assert!(s.fleet.crashes > 0, "chaos must actually bite");
    // Every casualty pairs with a replacement; only joins scheduled
    // after the last client drained can miss the run.
    assert!(
        s.fleet.joins + 2 >= s.fleet.crashes && s.fleet.joins <= s.fleet.crashes,
        "joins {} vs crashes {}",
        s.fleet.joins,
        s.fleet.crashes
    );
    assert!(
        s.report.completed as usize >= expected * 8 / 10,
        "churn with replacements keeps most requests alive ({}/{expected})",
        s.report.completed
    );
}

#[test]
fn drill_and_autoscaler_compose() {
    // The legacy fault schedule (balancer flap) and a reactive
    // autoscaler run merged in one plan.
    let seed = 51;
    let expected = expected_requests(0.1, seed);
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(l4_fleet(&[
            (REGIONS[0], 2),
            (REGIONS[1], 2),
            (REGIONS[2], 2),
        ]))
        .clients(workload_clients(Workload::WildChat, 0.1, seed))
        .faults(vec![
            FaultEvent {
                at: SimTime::from_secs(10),
                lb_index: 1,
                down: true,
            },
            FaultEvent {
                at: SimTime::from_secs(40),
                lb_index: 1,
                down: false,
            },
        ])
        .fleet_plan(Box::new(ThresholdAutoscaler::new(AutoscalerConfig {
            min_per_region: 1,
            max_per_region: 4,
            scale_out_load: 6.0,
            scale_in_load: 0.5,
            cooldown: SimDuration::from_secs(30),
            provision_delay: SimDuration::from_secs(10),
            ..AutoscalerConfig::default()
        })))
        .build()
        .expect("valid scenario");
    let s = run_scenario(&scenario, &FabricConfig::default());
    assert_eq!(accounted(&s) as usize, expected);
    assert_eq!(s.report.in_flight, 0);
}

/// The headline elasticity result (acceptance criterion): over the
/// Fig. 10 diurnal day, a threshold autoscaler visibly scales the fleet
/// and beats the *equal-cost* static fleet (same time-weighted mean
/// replica count) on P90 TTFT.
#[test]
fn threshold_autoscaler_beats_equal_cost_static_fleet_on_diurnal_day() {
    let cfg = FabricConfig::default();
    let day = SimDuration::from_secs(1_200);
    let scale = 0.008;
    let seed = 61;

    let autoscaler = ThresholdAutoscaler::new(diurnal_reference_reactive());
    let mut elastic_scenario = fig10_diurnal_scenario(SystemKind::SkyWalker, 1, day, scale, seed);
    elastic_scenario.fleet_plan = Some(Box::new(autoscaler));
    let elastic = run_scenario(&elastic_scenario, &cfg);

    // The fleet visibly scaled: the traces leave the starting size.
    assert!(elastic.fleet.joins >= 2, "joins: {}", elastic.fleet.joins);
    assert!(
        elastic.fleet.drains >= 1,
        "drains: {}",
        elastic.fleet.drains
    );
    assert!(
        elastic.fleet.peak_total() >= 5.0,
        "peak fleet {} must clearly exceed the 3-replica floor",
        elastic.fleet.peak_total()
    );
    assert_eq!(elastic.report.in_flight, 0);

    // Equal-cost static baseline: the same mean replica-count, fixed.
    let mean_total = elastic.fleet.mean_total();
    let mut static_scenario = fig10_diurnal_scenario(SystemKind::SkyWalker, 1, day, scale, seed);
    static_scenario.replicas = equal_cost_lite_fleet(mean_total);
    let fixed = run_scenario(&static_scenario, &cfg);
    assert!(!fixed.fleet.is_elastic());

    assert_eq!(
        accounted(&elastic),
        accounted(&fixed),
        "both runs see the same day of traffic"
    );
    assert!(
        elastic.report.ttft.p90 < fixed.report.ttft.p90,
        "elastic P90 TTFT {:.2}s must beat the equal-cost static fleet's {:.2}s \
         (elastic mean fleet {mean_total:.2}, static total {})",
        elastic.report.ttft.p90,
        fixed.report.ttft.p90,
        fixed.fleet.final_replicas
    );
}

/// The openness proof end to end: the diurnal-aware *predictive*
/// autoscaler — implemented entirely outside `skywalker-fleet` — drives
/// the same scenario and pre-provisions ahead of the ramp.
#[test]
fn predictive_autoscaler_scales_ahead_of_the_curve() {
    let cfg = FabricConfig::default();
    let day = SimDuration::from_secs(1_200);
    let scale = 0.008;
    let seed = 61;

    let planner = PredictiveAutoscaler::new(
        trio_diurnal_profiles(),
        diurnal_reference_predictive(day, scale),
    );
    let mut scenario = fig10_diurnal_scenario(SystemKind::SkyWalker, 1, day, scale, seed);
    scenario.fleet_plan = Some(Box::new(planner));
    let s = run_scenario(&scenario, &cfg);

    assert!(s.fleet.joins >= 2, "predictive plan must scale out");
    assert!(s.fleet.drains >= 1, "and back in after the peaks");
    assert_eq!(s.report.in_flight, 0);
    assert_eq!(s.report.failed, 0, "graceful drains never fail requests");
}
