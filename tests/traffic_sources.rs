//! End-to-end proof of the open traffic surface: streaming
//! [`TrafficSource`]s drive the full fabric through `ScenarioBuilder`
//! with no special-casing anywhere — including two sources
//! (`RagCorpusSource`, `FlashCrowdSource`) that exist only in the facade
//! crate, outside `skywalker-workload`.

use skywalker::net::Region;
use skywalker::replica::GpuProfile;
use skywalker::sim::{SimDuration, SimTime};
use skywalker::workload::{ArrivalSchedule, ConversationConfig, ConversationSource};
use skywalker::{
    balanced_fleet, lite_fleet, run_scenario, workload_clients, FabricConfig, FlashCrowdSource,
    RagCorpusConfig, RagCorpusSource, ReplicaPlacement, ReplicaRole, RunSummary, Scenario,
    ScenarioError, SystemKind, Workload,
};

fn conservation(s: &RunSummary, expected: usize, what: &str) {
    assert_eq!(
        (s.report.completed + s.report.in_flight + s.report.failed) as usize,
        expected,
        "{what}: requests lost or duplicated"
    );
    assert_eq!(s.report.failed, 0, "{what}: unexpected failures");
    assert_eq!(s.report.in_flight, 0, "{what}: stuck requests");
}

/// The acceptance pin of the redesign: a run driven by the streaming
/// preset source and a run driven by the equivalent pre-materialized
/// `Vec<ClientSpec>` must produce the *same* `RunSummary`, timeline and
/// all — the adapter and the stream are interchangeable.
#[test]
fn source_run_matches_materialized_run_exactly() {
    let cfg = FabricConfig::default();
    for (workload, scale, seed) in [(Workload::Arena, 0.05, 3), (Workload::MixedTree, 0.1, 17)] {
        let via_source = SystemKind::SkyWalker
            .builder()
            .fig8_fleet(workload)
            .traffic_source(workload.source(scale, seed))
            .build()
            .expect("fleet and source are set");
        let via_clients = SystemKind::SkyWalker
            .builder()
            .fig8_fleet(workload)
            .clients(workload_clients(workload, scale, seed))
            .build()
            .expect("fleet and clients are set");

        let a = run_scenario(&via_source, &cfg);
        let b = run_scenario(&via_clients, &cfg);
        assert_eq!(a.end_time, b.end_time, "{}", workload.label());
        assert_eq!(a.report.completed, b.report.completed);
        assert_eq!(a.report.generated_tokens, b.report.generated_tokens);
        assert_eq!(a.forwarded, b.forwarded);
        assert!((a.report.ttft.p90 - b.report.ttft.p90).abs() < 1e-12);
        assert!((a.report.e2e.p50 - b.report.e2e.p50).abs() < 1e-12);
        assert_eq!(a.peak_outstanding, b.peak_outstanding);
    }
}

/// Re-running the same scenario must replay identically: each run pulls
/// from a fresh clone of the source, so sources are not consumed.
#[test]
fn scenarios_with_sources_replay_deterministically() {
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .traffic_source(Workload::WildChat.source(0.08, 7))
        .build()
        .expect("fleet and source are set");
    let cfg = FabricConfig::default();
    let a = run_scenario(&scenario, &cfg);
    let b = run_scenario(&scenario, &cfg);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.report.completed, b.report.completed);
    assert_eq!(a.forwarded, b.forwarded);
}

/// Staggered arrivals: the same population on a uniform ramp finishes
/// later than the all-at-once cohort, every request still accounted for,
/// and the poll cadence knob does not change the timeline.
#[test]
fn ramped_arrivals_stream_through_the_fabric() {
    let regions = vec![(Region::UsEast, 8), (Region::EuWest, 6)];
    let ramp = SimDuration::from_secs(120);
    let source = || {
        Box::new(
            ConversationSource::new(ConversationConfig::wildchat(), regions.clone(), 31)
                .with_schedule(ArrivalSchedule::UniformRamp { over: ramp }),
        )
    };
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .traffic_source(source())
        .build()
        .expect("fleet and source are set");
    let expected: usize = scenario
        .clients_until(SimTime::MAX)
        .iter()
        .map(|c| c.total_requests())
        .sum();

    let s = run_scenario(&scenario, &FabricConfig::default());
    conservation(&s, expected, "ramped arrivals");
    assert!(
        s.end_time >= SimTime::ZERO + ramp,
        "the run cannot end before the last client arrives ({})",
        s.end_time
    );

    // Polling twice as often must not move a single arrival.
    let fine_cfg = FabricConfig {
        traffic_poll_interval: SimDuration::from_millis(125),
        ..FabricConfig::default()
    };
    let fine = run_scenario(&scenario, &fine_cfg);
    assert_eq!(fine.end_time, s.end_time, "poll cadence is not semantics");
    assert_eq!(fine.report.completed, s.report.completed);

    // A degenerate zero interval is clamped, not an infinite same-instant
    // poll loop.
    let zero_cfg = FabricConfig {
        traffic_poll_interval: SimDuration::ZERO,
        ..FabricConfig::default()
    };
    let zero = run_scenario(&scenario, &zero_cfg);
    assert_eq!(zero.end_time, s.end_time);
    assert_eq!(zero.report.completed, s.report.completed);
}

#[test]
fn builder_validates_fleet_and_traffic() {
    let err = Scenario::builder()
        .workload(Workload::Arena, 0.05, 1)
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::EmptyFleet);

    let err = Scenario::builder()
        .replicas(balanced_fleet())
        .build()
        .unwrap_err();
    assert_eq!(err, ScenarioError::NoTraffic);

    let err = Scenario::builder()
        .replicas(balanced_fleet())
        .clients(Vec::new())
        .build()
        .unwrap_err();
    assert_eq!(
        err,
        ScenarioError::NoTraffic,
        "an exhausted source is no traffic"
    );
}

/// Role-topology validation: a prefill-only replica needs a
/// decode-capable peer (colocated or decode-only) *in its own region* —
/// KV handoff never crosses the WAN. One case per region topology.
#[test]
fn builder_rejects_prefill_regions_without_decode_capacity() {
    use ReplicaRole::{Colocated, DecodeOnly, PrefillOnly};
    let build = |counts: &[(Region, u32)], roles: Vec<ReplicaRole>| {
        Scenario::builder()
            .replicas(lite_fleet(counts))
            .roles(roles)
            .workload(Workload::Arena, 0.05, 1)
            .build()
    };
    let us = Region::UsEast;
    let eu = Region::EuWest;

    // A region whose only replicas are prefill-only: every handoff from
    // there would have nowhere to land.
    let err = build(&[(us, 2)], vec![PrefillOnly, PrefillOnly]).unwrap_err();
    assert_eq!(err, ScenarioError::NoDecodeCapacity);

    // Decode capacity in another region does not count: the transfer
    // target must be region-local.
    let err = build(&[(us, 1), (eu, 1)], vec![PrefillOnly, DecodeOnly]).unwrap_err();
    assert_eq!(
        err,
        ScenarioError::NoDecodeCapacity,
        "a decode replica across the WAN is not a handoff target"
    );

    // A decode-only peer in the same region satisfies the prefill side.
    build(&[(us, 2)], vec![PrefillOnly, DecodeOnly]).expect("split pair in one region is valid");

    // A colocated peer decodes too, so it also satisfies it — including
    // via the default: roles shorter than the fleet pad with Colocated.
    build(&[(us, 2)], vec![PrefillOnly, Colocated]).expect("colocated peer decodes");
    build(&[(us, 2)], vec![PrefillOnly]).expect("missing role entries default to Colocated");

    // Topologies with no prefill-only replica never trip the check:
    // all-colocated fleets and even a decode-only singleton (it simply
    // serves full requests' decode phase for colocated prefill elsewhere
    // — here, nothing hands off to it, which is legal if wasteful).
    build(&[(us, 1), (eu, 1)], vec![Colocated, Colocated]).expect("all-colocated is valid");
    build(&[(us, 1), (eu, 1)], vec![Colocated, DecodeOnly])
        .expect("a decode-only replica with no prefill peer is legal");

    // Mixed multi-region: each region independently satisfied.
    build(
        &[(us, 2), (eu, 2)],
        vec![PrefillOnly, DecodeOnly, PrefillOnly, Colocated],
    )
    .expect("both regions have local decode capacity");
}

/// The RAG shared-corpus source — written entirely outside
/// `skywalker-workload` — runs through the standard builder, conserves
/// every request, and its cross-user document sharing is visible to
/// prefix-affinity routing: SkyWalker's replica hit rate beats blind
/// round robin by a wide margin.
#[test]
fn rag_corpus_source_runs_and_rewards_affinity() {
    let users = vec![
        (Region::UsEast, 10),
        (Region::EuWest, 8),
        (Region::ApNortheast, 8),
    ];
    let cfg = FabricConfig::default();
    let mut summaries = Vec::new();
    for system in [SystemKind::SkyWalker, SystemKind::RoundRobin] {
        let scenario = system
            .builder()
            .replicas(balanced_fleet())
            .traffic_source(Box::new(RagCorpusSource::new(
                RagCorpusConfig::default(),
                users.clone(),
                23,
            )))
            .build()
            .expect("fleet and source are set");
        let expected: usize = scenario
            .clients_until(SimTime::ZERO)
            .iter()
            .map(|c| c.total_requests())
            .sum();
        let s = run_scenario(&scenario, &cfg);
        conservation(&s, expected, system.label());
        summaries.push(s);
    }
    let (sky, rr) = (&summaries[0], &summaries[1]);
    assert!(
        sky.replica_hit_rate > rr.replica_hit_rate + 0.1,
        "shared hot documents must reward prefix affinity \
         ({:.3} SkyWalker vs {:.3} RR)",
        sky.replica_hit_rate,
        rr.replica_hit_rate
    );
    assert!(
        sky.replica_hit_rate > 0.3,
        "hot-document reuse should be substantial: {:.3}",
        sky.replica_hit_rate
    );
}

/// The flash-crowd source: a mid-run step of clients in one region.
/// Arrivals must actually happen at the step (the run outlives it), the
/// overloaded region must spill cross-region under SkyWalker, and a
/// region-local deployment must not forward at all.
#[test]
fn flash_crowd_source_triggers_cross_region_offload() {
    let burst_at = SimTime::from_secs(30);
    let fleet = vec![
        ReplicaPlacement {
            region: Region::UsEast,
            profile: GpuProfile::L4_LLAMA_8B,
        },
        ReplicaPlacement {
            region: Region::UsEast,
            profile: GpuProfile::L4_LLAMA_8B,
        },
        ReplicaPlacement {
            region: Region::UsEast,
            profile: GpuProfile::L4_LLAMA_8B,
        },
        ReplicaPlacement {
            region: Region::EuWest,
            profile: GpuProfile::L4_LLAMA_8B,
        },
    ];
    let source = || {
        Box::new(
            FlashCrowdSource::new(
                vec![(Region::UsEast, 2), (Region::EuWest, 2)],
                Region::EuWest,
                40,
                burst_at,
                29,
            )
            .with_burst_window(SimDuration::from_secs(5))
            .with_turns((2, 3)),
        )
    };
    let cfg = FabricConfig::default();

    let sky = SystemKind::SkyWalker
        .builder()
        .replicas(fleet.clone())
        .traffic_source(source())
        .build()
        .expect("fleet and source are set");
    let expected: usize = sky
        .clients_until(SimTime::MAX)
        .iter()
        .map(|c| c.total_requests())
        .sum();
    let s = run_scenario(&sky, &cfg);
    conservation(&s, expected, "flash crowd / SkyWalker");
    assert!(
        s.end_time > burst_at,
        "the run must outlive the burst step ({})",
        s.end_time
    );
    assert!(
        s.forwarded > 0,
        "a regional flash crowd over one EU replica must spill cross-region"
    );

    let local = SystemKind::RegionLocal
        .builder()
        .replicas(fleet)
        .traffic_source(source())
        .build()
        .expect("fleet and source are set");
    let l = run_scenario(&local, &cfg);
    assert_eq!(l.forwarded, 0, "region-local never forwards");
    assert!(
        s.report.ttft.p90 <= l.report.ttft.p90,
        "offloading the crowd must not worsen tail TTFT \
         ({:.2}s vs {:.2}s region-local)",
        s.report.ttft.p90,
        l.report.ttft.p90
    );
}
