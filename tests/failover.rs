//! Failure-recovery drills across the whole stack (§4.2): a balancer
//! crash mid-run must not lose requests, and recovery must hand replicas
//! back.
//!
//! The drills drive the open fleet surface — a [`ScheduledPlan`] of
//! [`FleetEvent::LbDown`]/[`FleetEvent::LbUp`] commands — and a parity
//! test pins the legacy `faults` adapter byte-identical to the
//! equivalent explicit plan.

use skywalker::sim::SimTime;
use skywalker::{
    balanced_fleet, run_scenario, workload_clients, FabricConfig, FaultEvent, FleetCommand,
    FleetEvent, Scenario, ScheduledPlan, SystemKind, Workload,
};

fn lb_down(at_secs: u64, lb: u32) -> FleetCommand {
    FleetCommand::new(SimTime::from_secs(at_secs), FleetEvent::LbDown { lb })
}

fn lb_up(at_secs: u64, lb: u32) -> FleetCommand {
    FleetCommand::new(SimTime::from_secs(at_secs), FleetEvent::LbUp { lb })
}

fn drill(commands: Vec<FleetCommand>, seed: u64) -> (u64, u64, u64, usize) {
    let clients = workload_clients(Workload::WildChat, 0.1, seed);
    let expected: usize = clients.iter().map(|c| c.total_requests()).sum();
    let scenario = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients)
        .fleet_plan(Box::new(ScheduledPlan::new(commands)))
        .build()
        .expect("fleet and clients are both set");
    let s = run_scenario(&scenario, &FabricConfig::default());
    (
        s.report.completed,
        s.report.failed,
        s.report.in_flight,
        expected,
    )
}

#[test]
fn crash_and_recovery_preserves_every_request() {
    let (completed, failed, in_flight, expected) = drill(vec![lb_down(10, 1), lb_up(40, 1)], 21);
    assert_eq!(
        (completed + failed + in_flight) as usize,
        expected,
        "requests vanished during failover"
    );
    assert_eq!(in_flight, 0, "run must drain after recovery");
    assert!(
        completed as usize >= expected * 9 / 10,
        "most requests must complete despite the crash ({completed}/{expected})"
    );
}

#[test]
fn permanent_crash_still_drains_via_rehoming() {
    // The balancer never comes back; its replicas are re-homed to the
    // nearest surviving balancer, which serves them as temporarily local.
    let (completed, failed, in_flight, expected) = drill(vec![lb_down(10, 2)], 23);
    assert_eq!((completed + failed + in_flight) as usize, expected);
    assert_eq!(in_flight, 0);
    assert!(completed as usize >= expected * 9 / 10);
}

#[test]
fn double_crash_tolerated() {
    let (completed, _failed, in_flight, expected) = drill(
        vec![lb_down(8, 0), lb_down(12, 1), lb_up(50, 0), lb_up(55, 1)],
        27,
    );
    assert_eq!(in_flight, 0);
    assert!(
        completed as usize >= expected * 8 / 10,
        "completed {completed} of {expected}"
    );
}

#[test]
fn faulted_run_matches_healthy_totals() {
    let clients = workload_clients(Workload::WildChat, 0.1, 29);
    let healthy = run_scenario(
        &Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients.clone()),
        &FabricConfig::default(),
    );
    // Direct mutation of `Scenario::faults` must keep working: the run
    // converts it into a ScheduledPlan internally.
    let mut faulted_scenario = Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients);
    faulted_scenario.faults = vec![
        FaultEvent {
            at: SimTime::from_secs(15),
            lb_index: 1,
            down: true,
        },
        FaultEvent {
            at: SimTime::from_secs(45),
            lb_index: 1,
            down: false,
        },
    ];
    let faulted = run_scenario(&faulted_scenario, &FabricConfig::default());
    assert_eq!(
        healthy.report.completed + healthy.report.failed,
        faulted.report.completed + faulted.report.failed,
    );
    // Retried requests pay at least the retry delay, so the faulted run's
    // tail latency cannot beat the healthy run's by more than noise.
    assert!(
        faulted.report.e2e.max >= healthy.report.e2e.p50,
        "faulted max {:.2}s vs healthy p50 {:.2}s",
        faulted.report.e2e.max,
        healthy.report.e2e.p50
    );
    // The balancer flap retried at least one request, and that shows up
    // in the report.
    assert!(faulted.report.retried >= 1);
    assert_eq!(healthy.report.retried, 0);
}

/// The legacy `faults` schedule and the equivalent explicit
/// [`ScheduledPlan`] must produce *byte-identical* runs — same events,
/// same RNG draws, same summary, down to every float.
#[test]
fn faults_adapter_parity_with_scheduled_plan_is_byte_identical() {
    let cfg = FabricConfig::default();
    let clients = workload_clients(Workload::WildChat, 0.08, 33);
    let faults = vec![
        FaultEvent {
            at: SimTime::from_secs(12),
            lb_index: 1,
            down: true,
        },
        FaultEvent {
            at: SimTime::from_secs(42),
            lb_index: 1,
            down: false,
        },
    ];

    let via_adapter = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients.clone())
        .faults(faults.clone())
        .build()
        .expect("valid scenario");

    let commands: Vec<FleetCommand> = faults
        .iter()
        .map(|f| {
            FleetCommand::new(
                f.at,
                if f.down {
                    FleetEvent::LbDown { lb: f.lb_index }
                } else {
                    FleetEvent::LbUp { lb: f.lb_index }
                },
            )
        })
        .collect();
    let via_plan = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients)
        .fleet_plan(Box::new(ScheduledPlan::new(commands).with_label("faults")))
        .build()
        .expect("valid scenario");

    let a = run_scenario(&via_adapter, &cfg);
    let b = run_scenario(&via_plan, &cfg);
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "adapter and explicit plan must be the same run, byte for byte"
    );
}
