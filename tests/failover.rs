//! Failure-recovery drills across the whole stack (§4.2): a balancer
//! crash mid-run must not lose requests, and recovery must hand replicas
//! back.

use skywalker::sim::SimTime;
use skywalker::{
    balanced_fleet, run_scenario, workload_clients, FabricConfig, FaultEvent, Scenario, SystemKind,
    Workload,
};

fn drill(faults: Vec<FaultEvent>, seed: u64) -> (u64, u64, u64, usize) {
    let clients = workload_clients(Workload::WildChat, 0.1, seed);
    let expected: usize = clients.iter().map(|c| c.total_requests()).sum();
    let mut scenario = Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients);
    scenario.faults = faults;
    let s = run_scenario(&scenario, &FabricConfig::default());
    (
        s.report.completed,
        s.report.failed,
        s.report.in_flight,
        expected,
    )
}

#[test]
fn crash_and_recovery_preserves_every_request() {
    let (completed, failed, in_flight, expected) = drill(
        vec![
            FaultEvent {
                at: SimTime::from_secs(10),
                lb_index: 1,
                down: true,
            },
            FaultEvent {
                at: SimTime::from_secs(40),
                lb_index: 1,
                down: false,
            },
        ],
        21,
    );
    assert_eq!(
        (completed + failed + in_flight) as usize,
        expected,
        "requests vanished during failover"
    );
    assert_eq!(in_flight, 0, "run must drain after recovery");
    assert!(
        completed as usize >= expected * 9 / 10,
        "most requests must complete despite the crash ({completed}/{expected})"
    );
}

#[test]
fn permanent_crash_still_drains_via_rehoming() {
    // The balancer never comes back; its replicas are re-homed to the
    // nearest surviving balancer, which serves them as temporarily local.
    let (completed, failed, in_flight, expected) = drill(
        vec![FaultEvent {
            at: SimTime::from_secs(10),
            lb_index: 2,
            down: true,
        }],
        23,
    );
    assert_eq!((completed + failed + in_flight) as usize, expected);
    assert_eq!(in_flight, 0);
    assert!(completed as usize >= expected * 9 / 10);
}

#[test]
fn double_crash_tolerated() {
    let (completed, _failed, in_flight, expected) = drill(
        vec![
            FaultEvent {
                at: SimTime::from_secs(8),
                lb_index: 0,
                down: true,
            },
            FaultEvent {
                at: SimTime::from_secs(12),
                lb_index: 1,
                down: true,
            },
            FaultEvent {
                at: SimTime::from_secs(50),
                lb_index: 0,
                down: false,
            },
            FaultEvent {
                at: SimTime::from_secs(55),
                lb_index: 1,
                down: false,
            },
        ],
        27,
    );
    assert_eq!(in_flight, 0);
    assert!(
        completed as usize >= expected * 8 / 10,
        "completed {completed} of {expected}"
    );
}

#[test]
fn faulted_run_matches_healthy_totals() {
    let clients = workload_clients(Workload::WildChat, 0.1, 29);
    let healthy = run_scenario(
        &Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients.clone()),
        &FabricConfig::default(),
    );
    let mut faulted_scenario = Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients);
    faulted_scenario.faults = vec![
        FaultEvent {
            at: SimTime::from_secs(15),
            lb_index: 1,
            down: true,
        },
        FaultEvent {
            at: SimTime::from_secs(45),
            lb_index: 1,
            down: false,
        },
    ];
    let faulted = run_scenario(&faulted_scenario, &FabricConfig::default());
    assert_eq!(
        healthy.report.completed + healthy.report.failed,
        faulted.report.completed + faulted.report.failed,
    );
    // Retried requests pay at least the retry delay, so the faulted run's
    // tail latency cannot beat the healthy run's by more than noise.
    assert!(
        faulted.report.e2e.max >= healthy.report.e2e.p50,
        "faulted max {:.2}s vs healthy p50 {:.2}s",
        faulted.report.e2e.max,
        healthy.report.e2e.p50
    );
}
