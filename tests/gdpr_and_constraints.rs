//! Regulatory routing constraints through the full fabric (§4.1, §7):
//! GDPR-constrained deployments must keep EU traffic in the EU even when
//! EU capacity is saturated, and continent-local constraints must
//! reproduce Bedrock's missed aggregation opportunity.

use skywalker::core::{PolicyKind, PushMode, RoutingConstraint};
use skywalker::fabric::Deployment;
use skywalker::net::Region;
use skywalker::replica::GpuProfile;
use skywalker::workload::{generate_conversation_clients, ConversationConfig, IdGen};
use skywalker::{run_scenario, FabricConfig, ReplicaPlacement, Scenario, SystemKind};

fn eu_heavy_scenario(constraint: RoutingConstraint, seed: u64) -> Scenario {
    // Saturated EU (1 replica, many clients), idle US (3 replicas).
    let fleet = vec![
        ReplicaPlacement {
            region: Region::EuWest,
            profile: GpuProfile::L4_LLAMA_8B,
        },
        ReplicaPlacement {
            region: Region::UsEast,
            profile: GpuProfile::L4_LLAMA_8B,
        },
        ReplicaPlacement {
            region: Region::UsEast,
            profile: GpuProfile::L4_LLAMA_8B,
        },
        ReplicaPlacement {
            region: Region::UsEast,
            profile: GpuProfile::L4_LLAMA_8B,
        },
    ];
    let mut ids = IdGen::new();
    let clients = generate_conversation_clients(
        &ConversationConfig::wildchat(),
        &[(Region::EuWest, 20)],
        seed,
        &mut ids,
    );
    Scenario::new(SystemKind::SkyWalker, fleet, clients).with_deployment(Deployment::PerRegion {
        policy: PolicyKind::CacheAware,
        push: PushMode::Pending,
        forward: true,
        tau: 4,
        constraint,
    })
}

#[test]
fn unrestricted_eu_overload_offloads_to_us() {
    let s = run_scenario(
        &eu_heavy_scenario(RoutingConstraint::Unrestricted, 41),
        &FabricConfig::default(),
    );
    assert!(s.forwarded > 0, "overloaded EU must offload");
    // US replicas actually served work.
    let us_work: u64 = s.replica_stats[1..].iter().map(|r| r.completed).sum();
    assert!(us_work > 0);
}

#[test]
fn gdpr_keeps_eu_traffic_in_eu_even_under_overload() {
    let s = run_scenario(
        &eu_heavy_scenario(RoutingConstraint::GdprEu, 43),
        &FabricConfig::default(),
    );
    assert_eq!(s.forwarded, 0, "EU traffic must not leave the EU");
    let us_work: u64 = s.replica_stats[1..].iter().map(|r| r.completed).sum();
    assert_eq!(us_work, 0, "US replicas must stay untouched");
    // And the system still completes everything, just slower.
    assert_eq!(s.report.in_flight, 0);
    assert_eq!(s.report.failed, 0);
}

#[test]
fn continent_local_blocks_intercontinental_offload() {
    let s = run_scenario(
        &eu_heavy_scenario(RoutingConstraint::ContinentLocal, 47),
        &FabricConfig::default(),
    );
    assert_eq!(s.forwarded, 0, "EU→US crosses continents: forbidden");
}

#[test]
fn constrained_run_is_slower_than_unrestricted() {
    let free = run_scenario(
        &eu_heavy_scenario(RoutingConstraint::Unrestricted, 53),
        &FabricConfig::default(),
    );
    let locked = run_scenario(
        &eu_heavy_scenario(RoutingConstraint::GdprEu, 53),
        &FabricConfig::default(),
    );
    assert!(
        locked.end_time >= free.end_time,
        "giving up cross-region capacity cannot speed the run up"
    );
    assert!(
        locked.report.throughput_tps <= free.report.throughput_tps,
        "throughput must not improve under the constraint: {:.0} vs {:.0}",
        locked.report.throughput_tps,
        free.report.throughput_tps
    );
}
