//! The parallel experiment lab end-to-end: a 3-policy × 2-source ×
//! 2-fleet × 4-seed grid (48 runs) executed by `skywalker-lab` on 1, 2,
//! and 8 workers.
//!
//! Two things are demonstrated:
//!
//! 1. **Determinism** — the `SweepReport` JSON is byte-identical at
//!    every worker count (asserted, not just printed): parallelism is
//!    pure wall-clock.
//! 2. **Speedup** — the measured wall-clock ratio of the 1-worker run
//!    over the multi-worker runs (≥ 2× on a multi-core machine; on a
//!    single hardware thread there is nothing to overlap and the ratio
//!    honestly reports ~1×).
//!
//! Run with:
//! ```sh
//! cargo run --release --example sweep
//! ```
//! Knobs: `SWEEP_SCALE` (client population multiplier, default 0.05)
//! and `SWEEP_SEED` (sweep root seed, default 7).

use skywalker::core::{PolicyFactory, PolicyKind};
use skywalker::{
    balanced_fleet, unbalanced_fleet, FabricConfig, P2cLocalFactory, ReplicaPlacement, Scenario,
    SystemKind, Workload,
};
use skywalker_lab::{SweepResult, SweepSpec};
use std::sync::Arc;

fn main() {
    let scale: f64 = std::env::var("SWEEP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let sweep_seed: u64 = std::env::var("SWEEP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);

    // The three axes of the grid. Every policy runs on SkyWalker's
    // per-region deployment shape so the comparison isolates the
    // routing policy itself; P2C-Local is the custom policy living
    // outside skywalker-core — external implementations sweep with
    // equal standing.
    let policies: Vec<(&str, Arc<dyn PolicyFactory>)> = vec![
        ("cache-aware", Arc::new(PolicyKind::CacheAware)),
        ("consistent-hash", Arc::new(PolicyKind::ConsistentHash)),
        ("p2c-local", Arc::new(P2cLocalFactory::new(sweep_seed))),
    ];
    type FleetFn = fn() -> Vec<ReplicaPlacement>;
    let sources = [Workload::Arena, Workload::Tot];
    let fleets: [(&str, FleetFn); 2] = [
        ("balanced-12", balanced_fleet),
        ("unbalanced-8", unbalanced_fleet),
    ];

    let mut spec = SweepSpec::new("sweep_demo", sweep_seed).replicates(4);
    for (pname, factory) in &policies {
        for workload in sources {
            for (fname, fleet) in fleets {
                let label = format!("{pname}/{}/{fname}", workload.label());
                let factory = Arc::clone(factory);
                spec = spec.cell(label, move |seed| {
                    let cfg = FabricConfig {
                        seed,
                        ..FabricConfig::default()
                    };
                    let scenario = Scenario::builder()
                        .deployment(SystemKind::SkyWalker.deployment())
                        .policy_factory_arc(Arc::clone(&factory))
                        .replicas(fleet())
                        .workload(workload, scale, seed)
                        .build()
                        .expect("fleet and workload are set");
                    (scenario, cfg)
                });
            }
        }
    }

    println!(
        "SkyWalker sweep lab — {} cells × {} seeds = {} runs (scale {scale}, sweep seed {sweep_seed})",
        spec.cell_count(),
        spec.replicate_count(),
        spec.total_runs(),
    );
    println!(
        "hardware threads available: {}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut results: Vec<SweepResult> = Vec::new();
    for workers in [1usize, 2, 8] {
        let result = spec.run(workers);
        println!(
            "workers={workers}: {} runs in {:.2}s",
            result.total_runs(),
            result.wall.as_secs_f64()
        );
        results.push(result);
    }

    // Determinism: the report JSON must not depend on the worker count.
    let reference = results[0].report().json_string();
    for r in &results[1..] {
        assert_eq!(
            r.report().json_string(),
            reference,
            "SweepReport JSON must be byte-identical across worker counts"
        );
    }
    println!("\nSweepReport JSON byte-identical across worker counts {{1, 2, 8}} ✓");

    let serial = results[0].wall.as_secs_f64();
    for r in &results[1..] {
        println!(
            "speedup over 1 worker at {} workers: {:.2}x",
            r.workers,
            serial / r.wall.as_secs_f64().max(1e-9)
        );
    }

    println!("\n{}", results[0].report().markdown());
    println!("Columns report the mean across the 4 seeds with [min, max]");
    println!("seed-to-seed envelopes; replica·s and cost $ come from the");
    println!("fleet capacity integral priced at the paper's reserved rate.");
}
