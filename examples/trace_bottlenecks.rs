//! Where did the P90 TTFT go? Trace the memory-pressure preset under
//! two engines from the shootout grid and let the structural diff name
//! the phase that explains the spread.
//!
//! The engine shootout (`examples/engine_shootout.rs`) shows `fcfs+lru`
//! and `fcfs+noevict` separated by roughly 2× at P90 TTFT under KV
//! pressure — but a latency percentile is a symptom, not a diagnosis.
//! This example reruns both cells with the span recorder attached,
//! decomposes every request's latency into exhaustive phases
//! (`skywalker_trace::Attribution`), renders each run's flamegraph-style
//! breakdown, and diffs them phase-for-phase: the prefill and
//! admission-wait rows move (a pinned-full cache stops caching
//! prefixes, so prefills recompute them), the decode row barely does —
//! the spread is cache behavior, not decoding speed.
//!
//!     cargo run --release --example trace_bottlenecks

use skywalker::{
    memory_pressure_scenario, run_scenario, Attribution, BottleneckReport, EngineSpec,
    FabricConfig, FcfsBatch, NoEvict, RunSummary, TraceDiff,
};

const SCALE: f64 = 0.25;
const SEED: u64 = 2;

fn traced_run(engine: EngineSpec) -> (RunSummary, BottleneckReport) {
    let scenario = memory_pressure_scenario(engine, SCALE, SEED);
    let cfg = FabricConfig {
        seed: SEED,
        ..FabricConfig::default()
    }
    .traced();
    let summary = run_scenario(&scenario, &cfg);
    let trace = summary.trace.as_ref().expect("tracing was enabled");
    assert!(trace.complete(), "recorder overflowed; raise the capacity");
    let attribution = Attribution::from_summary(trace);
    let report = BottleneckReport::new(summary.label.clone(), &attribution, 3);
    (summary, report)
}

fn main() {
    println!("tracing memory_pressure (scale {SCALE}, seed {SEED}) under two engines\n");

    let (base_sum, base) = traced_run(EngineSpec::default());
    let (other_sum, other) = traced_run(EngineSpec::new(
        Box::new(FcfsBatch::new()),
        Box::new(NoEvict),
    ));

    println!("{}", base.render());
    println!("{}", other.render());

    let diff = TraceDiff::between(&base, &other);
    println!("{}", diff.render());

    let ratio = other_sum.report.ttft.p90 / base_sum.report.ttft.p90;
    let mover = diff
        .dominant_ttft_mover()
        .expect("a 2x-ish spread has a dominant phase");
    println!(
        "\nP90 TTFT spread: {:.3}s -> {:.3}s ({ratio:.2}x) — dominated by the `{}` phase",
        base_sum.report.ttft.p90,
        other_sum.report.ttft.p90,
        mover.label()
    );

    // The point of the exercise, asserted so CI smoke-runs catch drift:
    // the spread is real, and the diff attributes it to the KV-memory
    // side of serving — cache-miss-inflated prefill, admission backlog,
    // or an outright KV stall — not to decode throughput.
    assert!(
        ratio > 1.2,
        "expected a visible P90-TTFT spread between the engines, got {ratio:.2}x"
    );
    use skywalker::Phase;
    assert!(
        matches!(
            mover,
            Phase::Prefill | Phase::AdmissionWait | Phase::KvStall
        ),
        "expected a KV-memory-side phase to dominate the TTFT delta, got {}",
        mover.label()
    );
}
