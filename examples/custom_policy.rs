//! Plugging a custom routing policy into SkyWalker — the openness demo.
//!
//! Two policies run here that the paper never shipped, neither of which
//! touches `skywalker-core`:
//!
//! 1. [`P2cLocal`] (from the facade crate): power-of-two-choices with a
//!    locality weight, installed through `ScenarioBuilder::policy_factory`.
//! 2. `SessionSticky`, defined *in this file*: ~30 lines that hash the
//!    session key directly over the candidate list — the smallest
//!    possible [`RoutingPolicy`] implementation, to show the recipe end
//!    to end (see `docs/extending.md`).
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use skywalker::core::{
    hash_key, BalancerConfig, LbId, PolicyFactory, RingTarget, RoutingPolicy, TargetState,
};
use skywalker::replica::ReplicaId;
use skywalker::scenarios::Workload;
use skywalker::{run_scenario, FabricConfig, P2cLocalFactory, Scenario, SystemKind};

/// The smallest useful custom policy: hash the session key over however
/// many candidates are available right now. Sticky per session while the
/// fleet is stable, rebalancing automatically as availability shifts.
#[derive(Debug, Default)]
struct SessionSticky;

impl<T: RingTarget> RoutingPolicy<T> for SessionSticky {
    fn select(&mut self, key: &str, _prompt: &[u32], candidates: &[TargetState<T>]) -> Option<T> {
        if candidates.is_empty() {
            return None;
        }
        let idx = (hash_key(key) % candidates.len() as u64) as usize;
        Some(candidates[idx].id)
    }

    fn name(&self) -> &str {
        "Sticky"
    }
}

/// Both layers run the same stateless policy.
#[derive(Debug)]
struct SessionStickyFactory;

impl PolicyFactory for SessionStickyFactory {
    fn build_local(&self, _cfg: &BalancerConfig) -> Box<dyn RoutingPolicy<ReplicaId>> {
        Box::new(SessionSticky)
    }

    fn build_remote(&self, _cfg: &BalancerConfig) -> Box<dyn RoutingPolicy<LbId>> {
        Box::new(SessionSticky)
    }

    fn label(&self) -> String {
        "Sticky".to_string()
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let seed = 77;
    println!("Custom policies through ScenarioBuilder — ToT workload, scale {scale}");
    println!("{}", "-".repeat(72));
    println!(
        "{:<12} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "policy", "tok/s", "TTFT p50", "E2E p50", "hit%", "fwd"
    );

    // The built-in reference point, as a preset…
    let skywalker = SystemKind::SkyWalker
        .builder()
        .fig8_fleet(Workload::Tot)
        .workload(Workload::Tot, scale, seed)
        .build()
        .expect("fleet and workload are set");
    // …and two custom policies on the identical deployment and traffic,
    // installed with one builder call each.
    let p2c = Scenario::builder()
        .deployment(SystemKind::SkyWalker.deployment())
        .policy_factory(P2cLocalFactory::new(seed))
        .fig8_fleet(Workload::Tot)
        .workload(Workload::Tot, scale, seed)
        .build()
        .expect("fleet and workload are set");
    let sticky = Scenario::builder()
        .deployment(SystemKind::SkyWalker.deployment())
        .policy_factory(SessionStickyFactory)
        .fig8_fleet(Workload::Tot)
        .workload(Workload::Tot, scale, seed)
        .build()
        .expect("fleet and workload are set");

    let cfg = FabricConfig::default();
    for scenario in [skywalker, p2c, sticky] {
        let s = run_scenario(&scenario, &cfg);
        println!(
            "{:<12} {:>10.0} {:>8.2}s {:>8.2}s {:>7.1}% {:>7}",
            s.label,
            s.report.throughput_tps,
            s.report.ttft.p50,
            s.report.e2e.p50,
            100.0 * s.replica_hit_rate,
            s.forwarded,
        );
    }
    println!("{}", "-".repeat(72));
    println!("Neither custom policy touched skywalker-core: implement the");
    println!("RoutingPolicy trait, wrap it in a PolicyFactory, and hand it to");
    println!("ScenarioBuilder::policy_factory. Recipe: docs/extending.md");
}
