//! A day in the life, on the dashboard: run the diurnal macro-benchmark
//! with the telemetry plane attached and render what an operator's wall
//! display would show — sparkline time series from the ring buffers and
//! a final registry snapshot in markdown and Prometheus form.
//!
//! Run with:
//! ```sh
//! cargo run --release --example telemetry_day
//! ```
//!
//! Tracing (`examples/trace_bottlenecks.rs`) answers *where the time
//! went* after a run; telemetry answers *what is happening now* while
//! one is in flight. Same fabric, opposite direction of gaze.

use skywalker::sim::SimDuration;
use skywalker::telemetry::sparkline;
use skywalker::{
    fig10_diurnal_scenario, markdown_table, prometheus_text, run_scenario, FabricConfig,
    SystemKind, TelemetrySummary,
};

/// One dashboard row: the series' sparkline plus its latest and peak.
fn row(summary: &TelemetrySummary, name: &str, unit: &str, width: usize) {
    let series = summary.series(name).expect("series was sampled");
    let values = series.values();
    let latest = series.latest().map(|(_, v)| v).unwrap_or(0.0);
    let peak = series.max_value();
    println!(
        "{name:<22} {}  last {latest:>8.3}{unit}  peak {peak:>8.3}{unit}",
        sparkline(&values, width)
    );
}

fn main() {
    // A compressed day: 24 h of the Fig. 3a demand curves squeezed into
    // 40 simulated minutes, sampled every 15 simulated seconds.
    let day = SimDuration::from_secs(40 * 60);
    let scenario = fig10_diurnal_scenario(SystemKind::SkyWalker, 4, day, 0.05, 42);
    let cfg = FabricConfig {
        seed: 42,
        ..FabricConfig::default()
    }
    .telemetry(SimDuration::from_secs(15));

    let s = run_scenario(&scenario, &cfg);
    let telemetry = s.telemetry.as_ref().expect("telemetry was enabled");

    println!(
        "{} — {} ticks at {:?} cadence",
        s.label, telemetry.ticks, telemetry.interval
    );
    println!("{}", "-".repeat(78));
    row(telemetry, "queue_depth", " req", 40);
    row(telemetry, "ttft_p90_seconds", " s", 40);
    row(telemetry, "hit_ratio", "", 40);
    row(telemetry, "serving_replicas", "", 40);
    row(telemetry, "kv_utilization", "", 40);
    println!("{}", "-".repeat(78));

    println!("\nFinal registry snapshot (markdown):\n");
    println!("{}", markdown_table(&telemetry.snapshot));

    // The same snapshot as a scrape would return it; print a taste.
    let exposition = prometheus_text(&telemetry.snapshot);
    println!(
        "Prometheus exposition (first lines of {} bytes):\n",
        exposition.len()
    );
    for line in exposition.lines().take(8) {
        println!("  {line}");
    }

    // CI smoke value: the dashboard must actually have data on it.
    assert!(telemetry.ticks > 0, "telemetry never ticked");
    assert!(
        !telemetry.snapshot.is_empty(),
        "registry snapshot came back empty"
    );
    let ttft = telemetry
        .series("ttft_p90_seconds")
        .expect("ttft series exists");
    assert!(
        ttft.values().iter().any(|&v| v > 0.0),
        "no TTFT was ever observed"
    );
    assert!(
        s.report.completed > 0,
        "the diurnal day completed no requests"
    );
    println!(
        "\nok: {} requests completed under observation",
        s.report.completed
    );
}
