//! Live mode: the same balancer and replica logic over real TCP sockets.
//!
//! Spawns two mock replica servers and two balancer "regions" on
//! localhost, peers the balancers, then drives traffic with blocking
//! clients — including a forced cross-"region" forward when one balancer
//! has no local capacity.
//!
//! Run with:
//! ```sh
//! cargo run --release --example live_demo
//! ```

use std::time::Duration;

use skywalker::core::{BalancerConfig, LbId};
use skywalker::net::Region;
use skywalker::replica::{GpuProfile, ReplicaId, Request};
use skywalker_live::{BalancerServer, LiveClient, ReplicaServer};

fn main() {
    // 0.002 time scale: a 300 ms prefill takes 0.6 ms of wall time.
    let scale = 0.002;
    let r0 = ReplicaServer::spawn(ReplicaId(0), GpuProfile::L4_LLAMA_8B, scale).unwrap();
    let r1 = ReplicaServer::spawn(ReplicaId(1), GpuProfile::L4_LLAMA_8B, scale).unwrap();

    let us = BalancerServer::spawn(
        LbId(0),
        BalancerConfig::skywalker(Region::UsEast),
        Duration::from_millis(20),
    )
    .unwrap();
    let eu = BalancerServer::spawn(
        LbId(1),
        BalancerConfig::skywalker(Region::EuWest),
        Duration::from_millis(20),
    )
    .unwrap();
    // All replicas live in "Europe"; the US balancer must forward.
    eu.attach_replica(ReplicaId(0), r0.addr()).unwrap();
    eu.attach_replica(ReplicaId(1), r1.addr()).unwrap();
    us.connect_peer(LbId(1), Region::EuWest, eu.addr()).unwrap();
    eu.connect_peer(LbId(0), Region::UsEast, us.addr()).unwrap();

    println!("live topology:");
    println!("  us balancer  {}", us.addr());
    println!("  eu balancer  {}  (owns both replicas)", eu.addr());
    println!("  replica 0    {}", r0.addr());
    println!("  replica 1    {}\n", r1.addr());

    // Give the probe threads a round to discover availability.
    std::thread::sleep(Duration::from_millis(100));

    let mut eu_client = LiveClient::connect(eu.addr()).unwrap();
    let mut us_client = LiveClient::connect(us.addr()).unwrap();

    let prompt: Vec<u32> = (0..512).collect();
    let out = eu_client
        .run(&Request::new(1, "eu-user", prompt.clone(), 64))
        .unwrap();
    println!(
        "eu-local request : ttft {:>7.1?}  e2e {:>7.1?}  cached {:>3} tokens",
        out.ttft, out.e2e, out.cached_prompt_tokens
    );

    let out = eu_client
        .run(&Request::new(2, "eu-user", prompt.clone(), 64))
        .unwrap();
    println!(
        "eu repeat        : ttft {:>7.1?}  e2e {:>7.1?}  cached {:>3} tokens (prefix hit)",
        out.ttft, out.e2e, out.cached_prompt_tokens
    );

    let out = us_client
        .run(&Request::new(3, "us-user", (1000..1400).collect(), 64))
        .unwrap();
    println!(
        "us -> eu forward : ttft {:>7.1?}  e2e {:>7.1?}  (forwarded {} request)",
        out.ttft,
        out.e2e,
        us.forwarded()
    );

    us.shutdown();
    eu.shutdown();
    r0.shutdown();
    r1.shutdown();
    println!("\nclean shutdown — same routing code as the simulator, real sockets.");
}
