//! A day in the life of a multi-region deployment: the economic argument
//! of the paper (§2.2) end to end.
//!
//! 1. Generate the diurnal per-region load curves (Fig. 2 / Fig. 3a).
//! 2. Show how aggregation flattens the demand (variance ratios).
//! 3. Price the three provisioning strategies (Fig. 3b).
//! 4. Run a regionally skewed workload on SkyWalker vs a region-local
//!    deployment and report the throughput gap (Fig. 10's mechanism).
//!
//! Run with:
//! ```sh
//! cargo run --release --example multi_region_day
//! ```

use skywalker::cost::{compare_costs, replicas_for_rate, DemandMatrix, Pricing};
use skywalker::workload::{aggregate_hourly, fig3_regions, variance_ratio};
use skywalker::{fig10_scenario, run_scenario, FabricConfig, SystemKind};

fn main() {
    println!("== 1. Diurnal load (Fig. 3a) ==");
    let profiles: Vec<_> = fig3_regions();
    for (_, p) in &profiles {
        println!(
            "  {:<12} peak-to-trough {:>6.2}x  (peak {:>5.0} req/h)",
            p.name,
            p.variance_ratio(),
            p.base + p.amp
        );
    }
    let hourly: Vec<[f64; 24]> = profiles.iter().map(|(_, p)| p.hourly_counts()).collect();
    let agg = aggregate_hourly(&profiles.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>());
    println!(
        "  {:<12} peak-to-trough {:>6.2}x   <- aggregation smooths the day",
        "AGGREGATED",
        variance_ratio(&agg)
    );

    println!("\n== 2. Provisioning cost (Fig. 3b) ==");
    // Convert request rates to replica demand: ~400 requests/hour per L4
    // (fine-grained so quantization does not mask the savings).
    let per_replica = 400.0;
    let demand = DemandMatrix::new(
        hourly
            .iter()
            .map(|h| replicas_for_rate(h, per_replica, 1))
            .collect(),
        1.0,
    )
    .expect("well-formed demand");
    let costs = compare_costs(&demand, Pricing::P5_48XLARGE);
    println!(
        "  region-local reserved : ${:>10.0}   (provision each region's peak)",
        costs.region_local_usd
    );
    println!(
        "  aggregated reserved   : ${:>10.0}   ({:.1}% cheaper — the paper reports 40.5%)",
        costs.aggregated_usd,
        100.0 * costs.aggregation_savings()
    );
    println!(
        "  perfect on-demand     : ${:>10.0}   ({:.1}x aggregated — the paper reports 2.2x)",
        costs.on_demand_autoscaled_usd,
        costs.on_demand_multiple()
    );

    println!("\n== 3. Cross-region serving under a US-skewed day (Fig. 10) ==");
    let cfg = FabricConfig::default();
    for system in [SystemKind::RegionLocal, SystemKind::SkyWalker] {
        let scenario = fig10_scenario(system, 6, 0.6, 11);
        let s = run_scenario(&scenario, &cfg);
        println!(
            "  {:<13} {:>8.0} tok/s   p90 TTFT {:>6.2}s   forwarded {:>4}",
            s.label, s.report.throughput_tps, s.report.ttft.p90, s.forwarded
        );
    }
    println!("\nSkyWalker turns the overloaded US region's queue into work for");
    println!("idle replicas abroad; region-local capacity sits stranded.");
}
