//! The disaggregation shootout: the `disagg` preset run split vs
//! colocated across both traffic shapes on the parallel lab, showing
//! where prefill/decode disaggregation pays and where it doesn't —
//! same fleet, same two-tier cache, same traffic; only the roles move.
//!
//! The expected verdict crosses over on P90 TTFT:
//!
//! - **decode-heavy**: colocated replicas fill their KV with
//!   long-running decodes and starve prefill admission, so the split —
//!   whose prefill replicas shed every request right after the first
//!   token — wins time-to-first-token;
//! - **prefill-heavy**: decodes are short, admission never starves, and
//!   halving the prefill capacity just doubles the prompt queue — the
//!   split loses.
//!
//! `BENCH_disagg.json` carries the full grid (plus the handoff and
//! tier-residency counters and the replica-seconds cost basis).
//!
//! Run with:
//! ```sh
//! cargo run --release --example disagg_shootout
//! ```
//! Knobs: `DISAGG_SCALE` (user population multiplier, default 1.0),
//! `DISAGG_SEED` (sweep root seed, default 7), `DISAGG_WORKERS`.

use skywalker::{disagg_recipe, DisaggWorkload};
use skywalker_bench::json::{Report, Val};
use skywalker_bench::rows::disagg_row;
use skywalker_bench::{f, header, pct, row};
use skywalker_lab::{replica_seconds, SweepSpec};

fn main() {
    let scale: f64 = std::env::var("DISAGG_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let seed: u64 = std::env::var("DISAGG_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let workers: usize = std::env::var("DISAGG_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    println!(
        "disagg shootout: {} workloads × split/colo × 2 seeds on {} workers (scale {scale})\n",
        DisaggWorkload::ALL.len(),
        workers
    );
    let mut spec = SweepSpec::new("disagg_shootout", seed).seeds(vec![1, 2]);
    let mut cells: Vec<(DisaggWorkload, bool, String)> = Vec::new();
    for wl in DisaggWorkload::ALL {
        for disagg in [false, true] {
            let label = format!("{}/{}", wl.label(), if disagg { "split" } else { "colo" });
            spec = spec.cell(label.clone(), disagg_recipe(wl, disagg, scale));
            cells.push((wl, disagg, label));
        }
    }
    let result = spec.run(workers);

    let mut rep = Report::new("disagg_shootout");
    rep.meta("scale", scale);
    rep.meta("sweep_seed", seed);
    rep.meta("preset", "disagg");

    header(&[
        "workload",
        "mode",
        "ttft p50",
        "ttft p90",
        "e2e p90",
        "hit",
        "transfers",
        "demoted",
        "promoted",
        "repl-sec",
        "done",
        "fail",
    ]);
    // (workload label, mode) → first-replicate P90 TTFT for the verdict.
    let mut p90: Vec<(DisaggWorkload, bool, f64)> = Vec::new();
    for (wl, disagg, label) in &cells {
        let cell = result.cell(label).expect("cell ran");
        for run in &cell.runs {
            let s = &run.summary;
            let mode = if *disagg { "split" } else { "colo" };
            let mut fields = disagg_row(wl.label(), mode, s);
            fields.push(("replicate", Val::from(run.tag)));
            rep.row(&fields);
        }
        // The table shows the first replicate; the JSON carries both.
        let s = &cell.runs[0].summary;
        if *disagg {
            assert!(s.transfers.started > 0, "{label}: split mode must hand off");
            assert_eq!(
                s.transfers.in_transfer(),
                0,
                "{label}: a drained run leaves nothing on the wire"
            );
        } else {
            assert_eq!(s.transfers.started, 0, "{label}: colo never hands off");
        }
        p90.push((*wl, *disagg, s.report.ttft.p90));
        row(&[
            wl.label().to_string(),
            if *disagg { "split" } else { "colo" }.to_string(),
            f(s.report.ttft.p50, 3),
            f(s.report.ttft.p90, 3),
            f(s.report.e2e.p90, 3),
            pct(s.replica_hit_rate),
            s.transfers.started.to_string(),
            s.demoted_tokens.to_string(),
            s.promoted_tokens.to_string(),
            f(replica_seconds(s), 0),
            s.report.completed.to_string(),
            s.report.failed.to_string(),
        ]);
    }

    // The acceptance bar: the split-vs-colo verdict on P90 TTFT crosses
    // over between the two traffic shapes — disaggregation is a
    // trade-off, not a free win or a strict loss.
    let ttft_of = |wl: DisaggWorkload, disagg: bool| {
        p90.iter()
            .find(|(w, d, _)| *w == wl && *d == disagg)
            .map(|(_, _, v)| *v)
            .expect("cell measured")
    };
    let mut split_wins = 0;
    let mut colo_wins = 0;
    for wl in DisaggWorkload::ALL {
        let split = ttft_of(wl, true);
        let colo = ttft_of(wl, false);
        println!(
            "\n{}: P90 TTFT split {:.3}s vs colo {:.3}s → {}",
            wl.label(),
            split,
            colo,
            if split < colo {
                "split wins"
            } else {
                "colo wins"
            }
        );
        if split < colo {
            split_wins += 1;
        } else {
            colo_wins += 1;
        }
    }
    assert!(
        split_wins >= 1 && colo_wins >= 1,
        "no P90 TTFT crossover between traffic shapes: {p90:?}"
    );

    rep.write("BENCH_disagg.json")
        .expect("write BENCH_disagg.json");
}
