//! A full (compressed) diurnal day under three fleet strategies: the
//! paper's Fig. 2/3a demand curves, served by
//!
//! 1. a **static** fleet sized to the day's mean load,
//! 2. a **reactive** [`ThresholdAutoscaler`] (scale on queue pressure),
//! 3. a **predictive** [`PredictiveAutoscaler`] that knows the diurnal
//!    shape and provisions ahead of each region's ramp — implemented
//!    entirely outside `skywalker-fleet`, as the openness proof.
//!
//! Run with:
//! ```sh
//! cargo run --release --example autoscale_day
//! ```

use skywalker::sim::SimDuration;
use skywalker::{
    diurnal_reference_predictive, diurnal_reference_reactive, equal_cost_lite_fleet,
    fig10_diurnal_scenario, run_scenario, trio_diurnal_profiles, FabricConfig, FleetPlan,
    PredictiveAutoscaler, RunSummary, SystemKind, ThresholdAutoscaler, REGIONS,
};

const DAY: SimDuration = SimDuration::from_secs(1_200);
const SCALE: f64 = 0.008;
const SEED: u64 = 61;

fn run_with(plan: Option<Box<dyn FleetPlan>>, per_region: u32) -> RunSummary {
    let mut scenario = fig10_diurnal_scenario(SystemKind::SkyWalker, per_region, DAY, SCALE, SEED);
    scenario.fleet_plan = plan;
    run_scenario(&scenario, &FabricConfig::default())
}

fn reactive() -> Box<dyn FleetPlan> {
    Box::new(ThresholdAutoscaler::new(diurnal_reference_reactive()))
}

fn predictive() -> Box<dyn FleetPlan> {
    Box::new(PredictiveAutoscaler::new(
        trio_diurnal_profiles(),
        diurnal_reference_predictive(DAY, SCALE),
    ))
}

fn main() {
    println!(
        "== A compressed diurnal day (24 h -> {}s) ==",
        DAY.as_secs_f64()
    );
    for (region, p) in trio_diurnal_profiles() {
        println!(
            "  {region:<12?} {:<12} swings {:>5.2}x over the day",
            p.name,
            p.variance_ratio()
        );
    }

    // The elastic runs first: their time-weighted mean fleet size prices
    // the equal-cost static baseline.
    let elastic = run_with(Some(reactive()), 1);
    let predicted = run_with(Some(predictive()), 1);
    let mean = elastic.fleet.mean_total();
    let mut static_scenario = fig10_diurnal_scenario(SystemKind::SkyWalker, 1, DAY, SCALE, SEED);
    static_scenario.replicas = equal_cost_lite_fleet(mean);
    let fixed = run_scenario(&static_scenario, &FabricConfig::default());

    println!(
        "\n  equal-cost baseline: reactive run averaged {mean:.2} replicas -> static fleet of {}",
        fixed.fleet.final_replicas
    );
    println!(
        "\n  {:<12} {:>9} {:>7} {:>8} {:>9} {:>10} {:>7} {:>7} {:>9}",
        "strategy",
        "completed",
        "failed",
        "p50 TTFT",
        "p90 TTFT",
        "mean fleet",
        "peak",
        "churn",
        "forwarded"
    );
    for (name, s) in [
        ("static", &fixed),
        ("reactive", &elastic),
        ("predictive", &predicted),
    ] {
        println!(
            "  {:<12} {:>9} {:>7} {:>7.2}s {:>8.2}s {:>10.2} {:>7.0} {:>7} {:>9}",
            name,
            s.report.completed,
            s.report.failed,
            s.report.ttft.p50,
            s.report.ttft.p90,
            s.fleet.mean_total(),
            s.fleet.peak_total(),
            s.fleet.joins + s.fleet.drains,
            s.forwarded,
        );
    }

    println!("\n== The day as the reactive autoscaler saw it (fleet size per region) ==");
    for region in REGIONS {
        let Some(series) = elastic.fleet.series(region) else {
            continue;
        };
        let mut row = format!("  {region:<12?} ");
        for k in 0..24 {
            let t = skywalker::sim::SimTime::ZERO + DAY.mul_f64((k as f64 + 0.5) / 24.0);
            let v = series.value_at(t).unwrap_or(0.0) as u32;
            row.push_str(&format!("{v}"));
        }
        row.push_str("   (one digit per compressed hour)");
        println!("{row}");
    }

    // The wiring the CI smoke run checks.
    assert!(
        elastic.fleet.is_elastic() && predicted.fleet.is_elastic(),
        "both autoscalers must move the fleet"
    );
    assert_eq!(
        elastic.report.completed + elastic.report.failed + elastic.report.in_flight,
        fixed.report.completed + fixed.report.failed + fixed.report.in_flight,
        "every strategy sees the same day of traffic"
    );
    assert!(
        elastic.report.ttft.p90 < fixed.report.ttft.p90,
        "tracking the day must beat the equal-cost static fleet on P90 TTFT"
    );

    println!("\nThe static fleet pays the morning ramp in queueing every day;");
    println!("the reactive plan pays it once per scale-out; the predictive");
    println!("plan — knowing Fig. 2's shape — pays it before it happens.");
}
