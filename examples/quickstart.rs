//! Quickstart: deploy SkyWalker on a three-region fleet, replay a small
//! ChatBot Arena-style workload, and print the paper's headline metrics.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use skywalker::{fig8_scenario, run_scenario, FabricConfig, SystemKind, Workload};

fn main() {
    // 0.25 × the paper's client population keeps the demo quick; pass a
    // scale factor as the first argument to change it.
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    println!("SkyWalker quickstart — ChatBot Arena workload, scale {scale}");
    println!("{}", "-".repeat(72));
    println!(
        "{:<14} {:>10} {:>9} {:>9} {:>9} {:>8} {:>7}",
        "system", "tok/s", "TTFT p50", "TTFT p90", "E2E p50", "hit%", "fwd"
    );

    for system in [
        SystemKind::RoundRobin,
        SystemKind::LeastLoad,
        SystemKind::SglRouter,
        SystemKind::SkyWalkerCh,
        SystemKind::SkyWalker,
    ] {
        let scenario = fig8_scenario(system, Workload::Arena, scale, 42);
        let s = run_scenario(&scenario, &FabricConfig::default());
        println!(
            "{:<14} {:>10.0} {:>8.2}s {:>8.2}s {:>8.2}s {:>7.1}% {:>7}",
            system.label(),
            s.report.throughput_tps,
            s.report.ttft.p50,
            s.report.ttft.p90,
            s.report.e2e.p50,
            100.0 * s.replica_hit_rate,
            s.forwarded,
        );
    }
    println!("{}", "-".repeat(72));
    println!("Baselines run behind one centralized US balancer (Fig. 1b);");
    println!("SkyWalker runs one balancer per region with selective pushing.");
}
