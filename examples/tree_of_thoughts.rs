//! Tree-of-Thoughts serving: where consistent hashing shines and where
//! it breaks (§5.1, Fig. 8c–8d).
//!
//! Uniform 2-branch trees hash beautifully — every node of a tree shares
//! the question id, so CH keeps whole trees on one replica and reuse is
//! nearly perfect. Mixed workloads (a few heavy 4-branch trees among the
//! 2-branch traffic) break that: CH keeps hammering the same replica with
//! an 85-request tree while others idle. SkyWalker's prefix trees plus
//! selective pushing absorb the burst.
//!
//! Run with:
//! ```sh
//! cargo run --release --example tree_of_thoughts
//! ```

use skywalker::{fig8_scenario, run_scenario, FabricConfig, SystemKind, Workload};

fn run_table(workload: Workload, scale: f64) {
    println!("\n-- {} --", workload.label());
    println!(
        "  {:<14} {:>10} {:>9} {:>8} {:>12}",
        "system", "tok/s", "E2E p50", "hit%", "imbalance"
    );
    let cfg = FabricConfig::default();
    for system in [
        SystemKind::LeastLoad,
        SystemKind::ConsistentHash,
        SystemKind::SglRouter,
        SystemKind::SkyWalkerCh,
        SystemKind::SkyWalker,
    ] {
        let s = run_scenario(&fig8_scenario(system, workload, scale, 23), &cfg);
        println!(
            "  {:<14} {:>10.0} {:>8.2}s {:>7.1}% {:>11.2}x",
            s.label,
            s.report.throughput_tps,
            s.report.e2e.p50,
            100.0 * s.replica_hit_rate,
            s.outstanding_imbalance,
        );
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    println!("Tree-of-Thoughts workloads at scale {scale}");
    run_table(Workload::Tot, scale);
    run_table(Workload::MixedTree, scale);
    println!("\nUniform trees: CH ≈ SkyWalker (both capture whole-tree affinity).");
    println!("Mixed trees: CH overloads the replicas owning heavy questions;");
    println!("SkyWalker detects full batches and spreads the burst.");
}
