//! The open traffic surface: two workloads the paper never measured,
//! plugged into the fabric as streaming [`TrafficSource`]s from outside
//! the workload crate.
//!
//! 1. **RAG shared corpus** — users everywhere query over a small pool
//!    of hot documents. Prefix reuse is cross-user and global, a regime
//!    none of the paper's four workloads covers; prefix-affinity routing
//!    converts it into cache hits, blind routing re-prefills the same
//!    512-token context everywhere.
//! 2. **Flash crowd** — a step-function overload: at t = 30 s a crowd of
//!    clients comes online in one region, all asking about the same
//!    trending topic. Streaming arrivals mean the fabric admits them
//!    mid-run; selective pushing spills the spike cross-region.
//!
//! Run with:
//! ```sh
//! cargo run --release --example traffic_sources
//! ```

use skywalker::net::Region;
use skywalker::replica::GpuProfile;
use skywalker::sim::{SimDuration, SimTime};
use skywalker::{
    balanced_fleet, run_scenario, FabricConfig, FlashCrowdSource, RagCorpusConfig, RagCorpusSource,
    ReplicaPlacement, SystemKind,
};

fn print_row(s: &skywalker::RunSummary) {
    println!(
        "  {:<14} {:>10.0} {:>8.2}s {:>8.2}s {:>7.1}% {:>7}",
        s.label,
        s.report.throughput_tps,
        s.report.ttft.p50,
        s.report.ttft.p90,
        100.0 * s.replica_hit_rate,
        s.forwarded,
    );
}

fn main() {
    let cfg = FabricConfig::default();

    println!("== 1. RAG over a shared document corpus ==");
    println!("   24 documents, 512 tokens each, Zipf-popular, 52 users in 3 regions\n");
    println!(
        "  {:<14} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "system", "tok/s", "TTFT p50", "TTFT p90", "hit%", "fwd"
    );
    let users = vec![
        (Region::UsEast, 20),
        (Region::EuWest, 16),
        (Region::ApNortheast, 16),
    ];
    for system in [
        SystemKind::RoundRobin,
        SystemKind::SglRouter,
        SystemKind::SkyWalker,
    ] {
        let scenario = system
            .builder()
            .replicas(balanced_fleet())
            .traffic_source(Box::new(RagCorpusSource::new(
                RagCorpusConfig::default(),
                users.clone(),
                42,
            )))
            .build()
            .expect("fleet and source are set");
        print_row(&run_scenario(&scenario, &cfg));
    }
    println!("\nHot documents are shared across users and regions: affinity routing");
    println!("keeps each document's queries together and the hit rate shows it.\n");

    println!("== 2. Flash crowd: EU step overload at t = 30s ==");
    println!("   4 steady clients; 60 more join in eu-west over 10 s, one topic\n");
    println!(
        "  {:<14} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "system", "tok/s", "TTFT p50", "TTFT p90", "hit%", "fwd"
    );
    let fleet: Vec<ReplicaPlacement> = [
        (Region::UsEast, 3u32),
        (Region::EuWest, 1),
        (Region::ApNortheast, 2),
    ]
    .iter()
    .flat_map(|&(region, n)| {
        (0..n).map(move |_| ReplicaPlacement {
            region,
            profile: GpuProfile::L4_LLAMA_8B,
        })
    })
    .collect();
    for system in [SystemKind::RegionLocal, SystemKind::SkyWalker] {
        let scenario = system
            .builder()
            .replicas(fleet.clone())
            .traffic_source(Box::new(
                FlashCrowdSource::new(
                    vec![(Region::UsEast, 2), (Region::EuWest, 2)],
                    Region::EuWest,
                    60,
                    SimTime::from_secs(30),
                    42,
                )
                .with_turns((2, 3))
                .with_burst_window(SimDuration::from_secs(10)),
            ))
            .build()
            .expect("fleet and source are set");
        print_row(&run_scenario(&scenario, &cfg));
    }
    println!("\nThe crowd arrives *mid-run* — the fabric pulls it from the source as");
    println!("virtual time advances. Region-local strands the spike on one EU");
    println!("replica; SkyWalker forwards it to idle capacity abroad.");
    println!("\nBoth sources implement the TrafficSource trait outside skywalker-");
    println!("workload — no enum grew a variant. Recipe: docs/workloads.md");
}
