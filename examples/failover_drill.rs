//! Balancer failure drill (§4.2): crash a regional balancer mid-run,
//! watch the controller re-home its replicas to the nearest surviving
//! balancer, then bring it back and verify the hand-back — scripted
//! through the open fleet surface ([`ScheduledPlan`]), which also lets
//! the same drill kill a *replica* outright and watch its in-flight
//! work reroute.
//!
//! Run with:
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use skywalker::replica::ReplicaId;
use skywalker::scenarios::balanced_fleet;
use skywalker::sim::SimTime;
use skywalker::{
    run_scenario, workload_clients, FabricConfig, FleetCommand, FleetEvent, ScheduledPlan,
    SystemKind, Workload,
};

fn main() {
    let cfg = FabricConfig::default();
    let clients = workload_clients(Workload::WildChat, 0.2, 99);
    let total_requests: usize = clients.iter().map(|c| c.total_requests()).sum();

    println!("Failover drill: {total_requests} requests, 3 regions, 12 replicas");
    println!("  t=20s  balancer in region 1 crashes");
    println!("  t=35s  a replica in region 0 crashes (in-flight work reroutes)");
    println!("  t=60s  the balancer recovers\n");

    let baseline = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients.clone())
        .build()
        .expect("fleet and clients are both set");
    let healthy = run_scenario(&baseline, &cfg);

    let plan = ScheduledPlan::new(vec![
        FleetCommand::new(SimTime::from_secs(20), FleetEvent::LbDown { lb: 1 }),
        FleetCommand::new(
            SimTime::from_secs(35),
            FleetEvent::ReplicaCrash {
                replica: ReplicaId(2),
            },
        ),
        FleetCommand::new(SimTime::from_secs(60), FleetEvent::LbUp { lb: 1 }),
    ])
    .with_label("drill");
    let drill = SystemKind::SkyWalker
        .builder()
        .replicas(balanced_fleet())
        .clients(clients)
        .fleet_plan(Box::new(plan))
        .build()
        .expect("fleet and clients are both set");
    let faulted = run_scenario(&drill, &cfg);

    println!(
        "  {:<22} {:>10} {:>8} {:>8} {:>9} {:>8}",
        "run", "completed", "failed", "retried", "tok/s", "p90 TTFT"
    );
    for (name, s) in [("healthy", &healthy), ("with crashes", &faulted)] {
        println!(
            "  {:<22} {:>10} {:>8} {:>8} {:>9.0} {:>7.2}s",
            name,
            s.report.completed,
            s.report.failed,
            s.report.retried,
            s.report.throughput_tps,
            s.report.ttft.p90
        );
    }

    assert_eq!(
        faulted.report.completed + faulted.report.failed + faulted.report.in_flight,
        healthy.report.completed + healthy.report.failed + healthy.report.in_flight,
        "no request may vanish"
    );
    assert_eq!(faulted.fleet.crashes, 1);
    println!("\nEvery request was accounted for: clients whose balancer died");
    println!("retried against the next-nearest one, the crashed replica's");
    println!("in-flight work was rerouted, and the controller re-homed the");
    println!("orphaned replicas until recovery handed them back.");
}
