//! Balancer failure drill (§4.2): crash a regional balancer mid-run,
//! watch the controller re-home its replicas to the nearest surviving
//! balancer, then bring it back and verify the hand-back.
//!
//! Run with:
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use skywalker::scenarios::balanced_fleet;
use skywalker::sim::SimTime;
use skywalker::{
    run_scenario, workload_clients, FabricConfig, FaultEvent, Scenario, SystemKind, Workload,
};

fn main() {
    let cfg = FabricConfig::default();
    let clients = workload_clients(Workload::WildChat, 0.2, 99);
    let total_requests: usize = clients.iter().map(|c| c.total_requests()).sum();

    println!("Failover drill: {total_requests} requests, 3 regions, 12 replicas");
    println!("  t=20s  balancer in region 1 crashes");
    println!("  t=60s  it recovers\n");

    let baseline = Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients.clone());
    let healthy = run_scenario(&baseline, &cfg);

    let mut drill = Scenario::new(SystemKind::SkyWalker, balanced_fleet(), clients);
    drill.faults = vec![
        FaultEvent {
            at: SimTime::from_secs(20),
            lb_index: 1,
            down: true,
        },
        FaultEvent {
            at: SimTime::from_secs(60),
            lb_index: 1,
            down: false,
        },
    ];
    let faulted = run_scenario(&drill, &cfg);

    println!(
        "  {:<22} {:>10} {:>10} {:>9} {:>8}",
        "run", "completed", "failed", "tok/s", "p90 TTFT"
    );
    for (name, s) in [("healthy", &healthy), ("with LB-1 crash", &faulted)] {
        println!(
            "  {:<22} {:>10} {:>10} {:>9.0} {:>7.2}s",
            name, s.report.completed, s.report.failed, s.report.throughput_tps, s.report.ttft.p90
        );
    }

    assert_eq!(
        faulted.report.completed + faulted.report.failed + faulted.report.in_flight,
        healthy.report.completed + healthy.report.failed + healthy.report.in_flight,
        "no request may vanish"
    );
    println!("\nEvery request was accounted for: clients whose balancer died");
    println!("retried against the next-nearest one; the controller re-homed");
    println!("the orphaned replicas until recovery handed them back.");
}
