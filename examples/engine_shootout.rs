//! The serving-engine shootout: the `memory_pressure` preset run across
//! five engines on the parallel lab, proving the fourth experiment axis
//! is real — same routing, same traffic, same fleet, and the engines
//! still split on P90 TTFT and hit ratio because the bottleneck is the
//! serving loop itself.
//!
//! Engines raced (each engine label lands in the table and in
//! `BENCH_engine.json`):
//!
//! - `fcfs+lru` — the default, byte-identical to the pre-engine-axis
//!   replica;
//! - `fcfs-chunk64+lru` — chunked prefill bounds iteration length;
//! - `fcfs-preempt0.92+lru` — preempts the youngest decode under KV
//!   pressure;
//! - `sjf+prefix-aware` — `ShortestPromptFirst` (a policy implemented
//!   *outside* the replica crate) over the hot-corpus-protecting
//!   evictor;
//! - `fcfs+noevict` — no recycling: the queueing-over-churn baseline.
//!
//! Run with:
//! ```sh
//! cargo run --release --example engine_shootout
//! ```
//! Knobs: `SHOOTOUT_SCALE` (user population multiplier, default 0.5),
//! `SHOOTOUT_SEED` (sweep root seed, default 7), `SHOOTOUT_WORKERS`.

use skywalker::{
    memory_pressure_recipe, EngineSpec, FcfsBatch, LruEvictor, NoEvict, PrefixAwareEvictor,
    ShortestPromptFirst,
};
use skywalker_bench::json::{Report, Val};
use skywalker_bench::rows::engine_row;
use skywalker_bench::{f, header, pct, row};
use skywalker_lab::SweepSpec;

fn main() {
    let scale: f64 = std::env::var("SHOOTOUT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let seed: u64 = std::env::var("SHOOTOUT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let workers: usize = std::env::var("SHOOTOUT_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));

    let engines = vec![
        EngineSpec::default(),
        EngineSpec::new(Box::new(FcfsBatch::chunked(64)), Box::new(LruEvictor)),
        EngineSpec::new(
            Box::new(FcfsBatch::new().with_preemption(0.92)),
            Box::new(LruEvictor),
        ),
        EngineSpec::new(
            Box::new(ShortestPromptFirst::new()),
            Box::new(PrefixAwareEvictor),
        ),
        EngineSpec::new(Box::new(FcfsBatch::new()), Box::new(NoEvict)),
    ];
    let labels: Vec<String> = engines.iter().map(|e| e.label()).collect();

    println!(
        "engine shootout: memory_pressure × {} engines × 2 seeds on {} workers (scale {scale})\n",
        engines.len(),
        workers
    );
    let spec = SweepSpec::new("engine_shootout", seed)
        .seeds(vec![1, 2])
        .engine_cells(
            "mp",
            memory_pressure_recipe(EngineSpec::default(), scale),
            engines,
        );
    let result = spec.run(workers);

    let mut rep = Report::new("engine_shootout");
    rep.meta("scale", scale);
    rep.meta("sweep_seed", seed);
    rep.meta("preset", "memory_pressure");

    header(&[
        "engine", "ttft p50", "ttft p90", "e2e p90", "hit", "preempt", "evicted", "chunked",
        "done", "fail",
    ]);
    let mut p90s: Vec<(String, f64)> = Vec::new();
    for (label, cell) in labels.iter().zip(&result.cells) {
        for run in &cell.runs {
            let s = &run.summary;
            let mut fields = engine_row(label, s);
            fields.push(("replicate", Val::from(run.tag)));
            rep.row(&fields);
        }
        // The table shows the first replicate; the JSON carries both.
        let s = &cell.runs[0].summary;
        assert_eq!(
            s.engine_label, *label,
            "scenario engine must match the cell"
        );
        p90s.push((label.clone(), s.report.ttft.p90));
        row(&[
            label.clone(),
            f(s.report.ttft.p50, 3),
            f(s.report.ttft.p90, 3),
            f(s.report.e2e.p90, 3),
            pct(s.replica_hit_rate),
            s.preempted.to_string(),
            s.evicted_tokens.to_string(),
            s.chunked_steps.to_string(),
            s.report.completed.to_string(),
            s.report.failed.to_string(),
        ]);
    }

    // The acceptance bar: at least two engines measurably diverge on
    // P90 TTFT under memory pressure (the axis does something).
    let min = p90s
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("engines raced");
    let max = p90s
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("engines raced");
    println!(
        "\nP90 TTFT spread: {} {:.3}s … {} {:.3}s ({:.2}x)",
        min.0,
        min.1,
        max.0,
        max.1,
        max.1 / min.1.max(1e-9)
    );
    assert!(
        max.1 > min.1 * 1.02,
        "engines did not diverge on P90 TTFT: {p90s:?}"
    );

    rep.write("BENCH_engine.json")
        .expect("write BENCH_engine.json");
}
