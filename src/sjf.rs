//! `ShortestPromptFirst` — a batch policy built entirely on the open
//! serving-engine surface, outside `skywalker-replica`.
//!
//! This is the engine-axis counterpart of [`crate::P2cLocal`] (routing),
//! `RagCorpusSource` (traffic), and [`crate::PredictiveAutoscaler`]
//! (fleet): proof that `BatchPolicy` is a real extension point, not an
//! internal enum in disguise. The policy itself is the classic SJF bet
//! applied to admission: when the batch is memory-bound, admit the
//! *cheapest* pending prompts first (shortest uncached-prefill cost
//! proxy: prompt length), skipping over requests that do not fit
//! instead of head-of-line blocking on them. Under memory pressure this
//! trades worst-case fairness for mean/P90 TTFT — exactly the
//! divergence `examples/engine_shootout.rs` measures against FCFS.

use skywalker_replica::{BatchPlan, BatchPolicy, StepView};

/// Shortest-prompt-first admission with optional prefill chunking.
///
/// Ties (equal prompt length) break toward the older request, and a
/// configurable aging bound caps starvation: once a request has waited
/// `max_skipped` planning rounds while shorter work jumped ahead, it is
/// moved to the head of the admission order and head-of-line blocking
/// is restored until it admits.
#[derive(Debug, Clone)]
pub struct ShortestPromptFirst {
    chunk: Option<u32>,
    max_skipped: u32,
    /// (request id, rounds it has been planned-but-not-admitted).
    waits: Vec<(u64, u32)>,
}

impl ShortestPromptFirst {
    /// SJF admission, full prefill, aging bound of 64 rounds.
    pub fn new() -> Self {
        ShortestPromptFirst {
            chunk: None,
            max_skipped: 64,
            waits: Vec::new(),
        }
    }

    /// Adds chunked prefill at `chunk` tokens per request per
    /// iteration.
    pub fn chunked(mut self, chunk: u32) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Overrides the aging bound (clamped to ≥ 1 round).
    pub fn with_aging(mut self, rounds: u32) -> Self {
        self.max_skipped = rounds.max(1);
        self
    }
}

impl Default for ShortestPromptFirst {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchPolicy for ShortestPromptFirst {
    fn plan(&mut self, view: &StepView<'_>) -> BatchPlan {
        // Age the requests still pending; forget the rest.
        self.waits
            .retain(|(id, _)| view.pending.iter().any(|p| p.id.0 == *id));
        for p in view.pending {
            match self.waits.iter_mut().find(|(id, _)| *id == p.id.0) {
                Some((_, rounds)) => *rounds += 1,
                None => self.waits.push((p.id.0, 0)),
            }
        }

        let mut order: Vec<usize> = (0..view.pending.len()).collect();
        order.sort_by_key(|&i| (view.pending[i].prompt_tokens, i));

        // Starvation valve: a sufficiently-aged request goes first, and
        // blocking admission behind it guarantees it wins the next slot
        // that fits.
        let starved = view
            .pending
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                self.waits
                    .iter()
                    .any(|(id, rounds)| *id == p.id.0 && *rounds >= self.max_skipped)
            })
            .map(|(i, _)| i)
            .min();
        let skip_unfit = match starved {
            Some(i) => {
                order.retain(|&x| x != i);
                order.insert(0, i);
                false
            }
            None => true,
        };

        BatchPlan {
            admit_order: order,
            skip_unfit,
            prefill_chunk: self.chunk,
            preempt: Vec::new(),
        }
    }

    fn label(&self) -> String {
        match self.chunk {
            None => "sjf".to_string(),
            Some(c) => format!("sjf-chunk{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skywalker_replica::{PendingView, RequestId};

    fn pending(specs: &[(u64, u32)]) -> Vec<PendingView> {
        specs
            .iter()
            .map(|&(id, plen)| PendingView {
                id: RequestId(id),
                prompt_tokens: plen,
                target_output_tokens: 4,
            })
            .collect()
    }

    fn view(p: &[PendingView]) -> StepView<'_> {
        StepView {
            pending: p,
            running: &[],
            kv_capacity: 1000,
            kv_used: 0,
            kv_reclaimable: 0,
            kv_committed: 0,
            max_batch: 8,
        }
    }

    #[test]
    fn orders_by_prompt_length_then_arrival() {
        let p = pending(&[(1, 30), (2, 10), (3, 30), (4, 5)]);
        let plan = ShortestPromptFirst::new().plan(&view(&p));
        assert_eq!(plan.admit_order, vec![3, 1, 0, 2]);
        assert!(plan.skip_unfit, "SJF skips misfits instead of blocking");
        assert!(plan.preempt.is_empty());
    }

    #[test]
    fn aging_restores_head_of_line_blocking() {
        let p = pending(&[(1, 100), (2, 1)]);
        let mut policy = ShortestPromptFirst::new().with_aging(3);
        for _ in 0..3 {
            let plan = policy.plan(&view(&p));
            assert_eq!(plan.admit_order[0], 1, "short prompt leads pre-aging");
        }
        let plan = policy.plan(&view(&p));
        assert_eq!(plan.admit_order[0], 0, "starved long prompt promoted");
        assert!(!plan.skip_unfit, "blocking protects the starved request");
    }

    #[test]
    fn forgets_departed_requests() {
        let mut policy = ShortestPromptFirst::new().with_aging(2);
        let p = pending(&[(1, 100)]);
        policy.plan(&view(&p));
        policy.plan(&view(&p));
        // Request 1 admitted/left; a new queue never inherits its age.
        let q = pending(&[(2, 100)]);
        let plan = policy.plan(&view(&q));
        assert!(plan.skip_unfit);
        assert_eq!(policy.waits.len(), 1);
    }

    #[test]
    fn labels_stable() {
        assert_eq!(ShortestPromptFirst::new().label(), "sjf");
        assert_eq!(
            ShortestPromptFirst::new().chunked(128).label(),
            "sjf-chunk128"
        );
    }
}
