//! Ready-made scenarios matching the paper's experiment setups (§5.1).
//!
//! Every macrobenchmark uses L4 replicas spread over the three-region
//! layout (US, Europe, Asia) with closed-loop clients in all three
//! regions. The four workloads are:
//!
//! - **ChatBot Arena**: equal client counts per region (the paper runs 80
//!   ongoing conversations per region).
//! - **WildChat**: unequal counts (40 US / 30 EU / 30 Asia), each region
//!   replaying conversations of its own geographic users.
//! - **Tree of Thoughts (ToT)**: 2-branch depth-4 trees (15 requests),
//!   40/20/20 clients.
//! - **Mixed Tree**: the US runs two clients of heavy 4-branch trees (85
//!   requests) while other regions keep 2-branch traffic — the
//!   heterogeneous-program stressor.

use skywalker_net::Region;
use skywalker_replica::{EngineSpec, GpuProfile, KvConfig, LruEvictor, ReplicaRole, TieredEvictor};
use skywalker_sim::SimDuration;
use skywalker_workload::{
    drain, fig3_regions, generate_conversation_clients, generate_tot_clients, ClientSpec,
    ConversationConfig, ConversationSource, DiurnalProfile, IdGen, LengthModel, MergeSource,
    TotConfig, TotSource, TrafficSource,
};

use skywalker_fleet::AutoscalerConfig;

use crate::autoscale::PredictiveConfig;
use crate::fabric::{FabricConfig, ReplicaPlacement, Scenario, ScenarioBuilder, SystemKind};
use crate::sources::{DiurnalSource, RagCorpusConfig, RagCorpusSource};

/// The paper's three serving regions.
pub const REGIONS: [Region; 3] = Region::PAPER_TRIO;

/// An L4 fleet with the given per-region replica counts.
pub fn l4_fleet(counts: &[(Region, u32)]) -> Vec<ReplicaPlacement> {
    let mut fleet = Vec::new();
    for &(region, n) in counts {
        for _ in 0..n {
            fleet.push(ReplicaPlacement {
                region,
                profile: GpuProfile::L4_LLAMA_8B,
            });
        }
    }
    fleet
}

/// A balanced 12-replica fleet (4 per region), the ToT configuration.
pub fn balanced_fleet() -> Vec<ReplicaPlacement> {
    l4_fleet(&[(REGIONS[0], 4), (REGIONS[1], 4), (REGIONS[2], 4)])
}

/// The unbalanced fleet variant (3 US / 2 EU / 3 Asia + 4 extra US = the
/// paper also tests 3/3/2; we expose the knob).
pub fn unbalanced_fleet() -> Vec<ReplicaPlacement> {
    l4_fleet(&[(REGIONS[0], 3), (REGIONS[1], 2), (REGIONS[2], 3)])
}

/// The four macrobenchmark workloads of Fig. 8 — preset constructors for
/// the streaming [`TrafficSource`]s that generate them, mirroring what
/// `PolicyKind` is to the open routing-policy trait. Nothing in the
/// fabric dispatches on this enum; any external [`TrafficSource`] plugs
/// into [`ScenarioBuilder::traffic_source`] with equal standing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// ChatBot Arena-style conversations, equal clients per region.
    Arena,
    /// WildChat-style conversations, 40/30/30 clients.
    WildChat,
    /// 2-branch Tree of Thoughts, 40/20/20 clients.
    Tot,
    /// Mixed: US sends 4-branch trees, others 2-branch.
    MixedTree,
}

impl Workload {
    /// All four, in the paper's column order.
    pub const ALL: [Workload; 4] = [
        Workload::Arena,
        Workload::WildChat,
        Workload::Tot,
        Workload::MixedTree,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Arena => "ChatBot Arena",
            Workload::WildChat => "WildChat",
            Workload::Tot => "ToT",
            Workload::MixedTree => "Mixed Tree",
        }
    }

    /// The streaming source generating this workload at the given scale
    /// (1.0 = the paper's client counts); clients materialize lazily at
    /// their arrival instants.
    pub fn source(&self, scale: f64, seed: u64) -> Box<dyn TrafficSource> {
        let n = |base: u32| ((f64::from(base) * scale).round() as u32).max(1);
        match self {
            Workload::Arena => Box::new(
                ConversationSource::new(
                    ConversationConfig::arena(),
                    vec![
                        (REGIONS[0], n(80)),
                        (REGIONS[1], n(80)),
                        (REGIONS[2], n(80)),
                    ],
                    seed,
                )
                .with_label(self.label()),
            ),
            Workload::WildChat => Box::new(
                ConversationSource::new(
                    ConversationConfig::wildchat(),
                    vec![
                        (REGIONS[0], n(40)),
                        (REGIONS[1], n(30)),
                        (REGIONS[2], n(30)),
                    ],
                    seed,
                )
                .with_label(self.label()),
            ),
            Workload::Tot => Box::new(
                TotSource::new(
                    TotConfig::branch2(),
                    vec![
                        (REGIONS[0], n(40)),
                        (REGIONS[1], n(20)),
                        (REGIONS[2], n(20)),
                    ],
                    2,
                    seed,
                )
                .with_label(self.label()),
            ),
            Workload::MixedTree => {
                // US: two clients of heavy 4-branch trees; EU/Asia:
                // 2-branch. The light source's id range starts past the
                // heavy source's closed-form request count.
                let heavy = TotSource::new(TotConfig::branch4(), vec![(REGIONS[0], 2)], 2, seed);
                let light = TotSource::new(
                    TotConfig::branch2(),
                    vec![(REGIONS[1], n(20)), (REGIONS[2], n(20))],
                    2,
                    seed ^ 0xBEEF,
                )
                .with_first_request_id(heavy.request_id_end());
                Box::new(
                    MergeSource::new(vec![Box::new(heavy), Box::new(light)])
                        .with_label(self.label()),
                )
            }
        }
    }
}

/// Builds the client population for a workload, scaled by `scale`
/// (1.0 = the paper's client counts) — the eager drain of
/// [`Workload::source`], kept for tests and offline analysis.
pub fn workload_clients(workload: Workload, scale: f64, seed: u64) -> Vec<ClientSpec> {
    drain(workload.source(scale, seed).as_mut())
}

impl ScenarioBuilder {
    /// Sets the traffic to one of the paper's workloads at the given
    /// scale (1.0 = the paper's client counts), streamed through
    /// [`Workload::source`].
    pub fn workload(self, workload: Workload, scale: f64, seed: u64) -> Self {
        self.traffic_source(workload.source(scale, seed))
    }

    /// Sets the replica fleet to the workload's standard Fig. 8 fleet
    /// (balanced for tree workloads, unbalanced for conversations).
    pub fn fig8_fleet(self, workload: Workload) -> Self {
        match workload {
            Workload::Tot | Workload::MixedTree => self.replicas(balanced_fleet()),
            _ => self.replicas(unbalanced_fleet()),
        }
    }
}

/// One cell of the Fig. 8 grid: a system running a workload on the
/// standard fleet — a thin wrapper over [`ScenarioBuilder`].
pub fn fig8_scenario(system: SystemKind, workload: Workload, scale: f64, seed: u64) -> Scenario {
    system
        .builder()
        .fig8_fleet(workload)
        .workload(workload, scale, seed)
        .build()
        .expect("fig8 presets set a fleet and a workload")
}

/// The Fig. 9 single-region microbenchmark: everything co-located in one
/// region, ToT branch-2 traffic, `clients` closed-loop clients against
/// `replicas` replicas.
pub fn fig9_scenario(system: SystemKind, replicas: u32, clients: u32, seed: u64) -> Scenario {
    let region = REGIONS[0];
    let mut ids = IdGen::new();
    let clients = generate_tot_clients(
        &TotConfig::branch2(),
        &[(region, clients)],
        2,
        seed,
        &mut ids,
    );
    system
        .builder()
        .replicas(l4_fleet(&[(region, replicas)]))
        .clients(clients)
        .build()
        .expect("fig9 presets set a fleet and clients")
}

/// The Fig. 10 diurnal/imbalance experiment: regionally skewed clients
/// (120 US / 40 EU / 40 Asia at scale 1.0) over an evenly distributed
/// fleet of `total_replicas`.
pub fn fig10_scenario(system: SystemKind, total_replicas: u32, scale: f64, seed: u64) -> Scenario {
    let per = total_replicas / 3;
    let rem = total_replicas % 3;
    let fleet = l4_fleet(&[
        (REGIONS[0], per + u32::from(rem > 0)),
        (REGIONS[1], per + u32::from(rem > 1)),
        (REGIONS[2], per),
    ]);
    let mut ids = IdGen::new();
    let n = |base: u32| ((f64::from(base) * scale).round() as u32).max(1);
    let clients = generate_conversation_clients(
        &ConversationConfig::wildchat(),
        &[
            (REGIONS[0], n(120)),
            (REGIONS[1], n(40)),
            (REGIONS[2], n(40)),
        ],
        seed,
        &mut ids,
    );
    system
        .builder()
        .replicas(fleet)
        .clients(clients)
        .build()
        .expect("fig10 presets set a fleet and clients")
}

/// A deliberately small replica for compressed diurnal days: L4 timing
/// with ~1/8 of the batch ceiling and KV capacity, so a `scale`-thinned
/// day saturates replicas the way the full-scale day saturates real
/// L4s. Without this, thinning the traffic to test volume would leave
/// every replica idle and nothing for an autoscaler to react to.
pub const L4_LITE: GpuProfile = GpuProfile {
    name: "L4-lite/llama-3.1-8b",
    prefill_base_us: 20_000,
    prefill_per_token_us: 547.0,
    chunk_base_us: 8_000,
    decode_base_us: 28_000,
    decode_per_request_us: 450.0,
    kv: KvConfig {
        capacity_tokens: 6_144,
        block_tokens: 16,
    },
    max_batch_size: 6,
    kv_transfer_us_per_token: 8.0,
};

/// An [`L4_LITE`] fleet with the given per-region replica counts.
pub fn lite_fleet(counts: &[(Region, u32)]) -> Vec<ReplicaPlacement> {
    counts
        .iter()
        .flat_map(|&(region, n)| {
            (0..n).map(move |_| ReplicaPlacement {
                region,
                profile: L4_LITE,
            })
        })
        .collect()
}

/// The diurnal rate curves of the paper's three macrobenchmark regions
/// (Fig. 3a curves restricted to the [`REGIONS`] trio).
pub fn trio_diurnal_profiles() -> Vec<(Region, DiurnalProfile)> {
    fig3_regions()
        .into_iter()
        .filter(|(r, _)| REGIONS.contains(r))
        .collect()
}

/// The Fig. 10 experiment's *diurnal* form: a full (compressed) day of
/// per-region demand following the Fig. 3a curves, over an evenly
/// distributed starting fleet of `per_region` [`L4_LITE`] replicas per
/// region (lite hardware matches the thinned traffic — see [`L4_LITE`]).
///
/// This is the scenario where fleet elasticity shows: run it as-is for
/// the static baseline, or attach a fleet plan
/// (`ScenarioBuilder::fleet_plan` via [`Scenario`]'s builder — e.g. a
/// `ThresholdAutoscaler` or [`crate::PredictiveAutoscaler`]) to let
/// capacity track the day. `day` compresses 24 h of the curves into sim
/// time; `scale` keeps that fraction of the trace's arrivals.
pub fn fig10_diurnal_scenario(
    system: SystemKind,
    per_region: u32,
    day: SimDuration,
    scale: f64,
    seed: u64,
) -> Scenario {
    let fleet = lite_fleet(&[
        (REGIONS[0], per_region),
        (REGIONS[1], per_region),
        (REGIONS[2], per_region),
    ]);
    let source = DiurnalSource::new(
        &trio_diurnal_profiles(),
        day,
        scale,
        &DiurnalSource::light_chat(),
        seed,
    );
    system
        .builder()
        .replicas(fleet)
        .traffic_source(Box::new(source))
        .label(format!("{} (diurnal)", system.label()))
        .build()
        .expect("fig10 diurnal presets set a fleet and traffic")
}

/// An L4-timed replica whose KV cache is starved to ~1/24 of the real
/// geometry: the [`memory_pressure_scenario`] hardware. With ~2 k KV
/// tokens against a hot 8-document corpus of 256-token prefixes, demand
/// permanently exceeds capacity — admission queues form, eviction churns
/// on every acquire, and serving-engine choices (admission order,
/// chunked prefill, eviction policy) dominate the latency distribution
/// instead of routing.
pub const L4_PRESSURE: GpuProfile = GpuProfile {
    name: "L4-pressure/llama-3.1-8b",
    prefill_base_us: 20_000,
    prefill_per_token_us: 547.0,
    chunk_base_us: 8_000,
    decode_base_us: 28_000,
    decode_per_request_us: 450.0,
    kv: KvConfig {
        capacity_tokens: 2_048,
        block_tokens: 16,
    },
    max_batch_size: 16,
    kv_transfer_us_per_token: 8.0,
};

/// The memory-pressure preset: a single-region, two-replica
/// [`L4_PRESSURE`] fleet serving RAG traffic over a hot shared corpus
/// whose working set alone fills one replica's KV cache. This is the
/// scenario where engines *measurably diverge* — run it across
/// [`EngineSpec`]s (`examples/engine_shootout.rs`) and P90 TTFT and the
/// replica hit ratio split by engine, because the bottleneck is the
/// serving loop, not the wide-area routing the other presets stress.
///
/// `scale` thins the user population (1.0 ≈ 40 users); the engine label
/// lands in the scenario label, so shootout tables and goldens
/// self-describe.
pub fn memory_pressure_scenario(engine: EngineSpec, scale: f64, seed: u64) -> Scenario {
    let region = REGIONS[0];
    let users = ((40.0 * scale).round() as u32).max(2);
    let cfg = RagCorpusConfig {
        corpus_docs: 8,
        doc_tokens: 256,
        doc_zipf: 1.2,
        query_tokens: LengthModel {
            mu: 3.0,
            sigma: 0.6,
            min: 4,
            max: 64,
        },
        answer_tokens: LengthModel {
            mu: 4.0,
            sigma: 0.6,
            min: 8,
            max: 160,
        },
        queries_per_user: (3, 8),
    };
    let label = format!("memory-pressure/{}", engine.label());
    SystemKind::SkyWalker
        .builder()
        .replicas(vec![
            ReplicaPlacement {
                region,
                profile: L4_PRESSURE,
            };
            2
        ])
        .traffic_source(Box::new(RagCorpusSource::new(
            cfg,
            vec![(region, users)],
            seed,
        )))
        .engine(engine)
        .label(label)
        .build()
        .expect("memory-pressure preset sets a fleet and traffic")
}

/// A seed-parametric recipe of the memory-pressure preset — the
/// sweep-harness counterpart of [`fig8_recipe`] for engine grids
/// (`SweepSpec::engine_cells` builds exactly these).
pub fn memory_pressure_recipe(
    engine: EngineSpec,
    scale: f64,
) -> impl Fn(u64) -> (Scenario, FabricConfig) + Clone + Send + Sync + 'static {
    move |seed| {
        let cfg = FabricConfig {
            seed,
            ..FabricConfig::default()
        };
        (memory_pressure_scenario(engine.clone(), scale, seed), cfg)
    }
}

/// The two traffic shapes of the disaggregation shootout: where the
/// prefill/decode split pays for its transfer cost, and where it
/// doesn't.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisaggWorkload {
    /// Long shared-corpus prompts, short answers: prefill dominates.
    PrefillHeavy,
    /// Short prompts, long generations: decode dominates, and running
    /// decodes hold KV for a long time.
    DecodeHeavy,
}

impl DisaggWorkload {
    /// Both shapes, prefill-heavy first.
    pub const ALL: [DisaggWorkload; 2] =
        [DisaggWorkload::PrefillHeavy, DisaggWorkload::DecodeHeavy];

    /// Short label used in scenario and digest names.
    pub fn label(&self) -> &'static str {
        match self {
            DisaggWorkload::PrefillHeavy => "prefill-heavy",
            DisaggWorkload::DecodeHeavy => "decode-heavy",
        }
    }

    fn corpus(&self) -> RagCorpusConfig {
        match self {
            DisaggWorkload::PrefillHeavy => RagCorpusConfig {
                corpus_docs: 12,
                doc_tokens: 384,
                doc_zipf: 1.1,
                query_tokens: LengthModel {
                    mu: 3.5,
                    sigma: 0.6,
                    min: 8,
                    max: 96,
                },
                answer_tokens: LengthModel {
                    mu: 2.8,
                    sigma: 0.4,
                    min: 4,
                    max: 32,
                },
                queries_per_user: (3, 8),
            },
            DisaggWorkload::DecodeHeavy => RagCorpusConfig {
                corpus_docs: 8,
                doc_tokens: 96,
                doc_zipf: 1.1,
                query_tokens: LengthModel {
                    mu: 3.0,
                    sigma: 0.6,
                    min: 4,
                    max: 48,
                },
                answer_tokens: LengthModel {
                    mu: 5.3,
                    sigma: 0.4,
                    min: 128,
                    max: 400,
                },
                queries_per_user: (2, 5),
            },
        }
    }
}

/// The serving engine of the disaggregation preset: LRU eviction behind
/// a two-tier wrapper that demotes GPU victims into a host pool twice
/// the GPU cache's size instead of dropping them. Decode replicas keep
/// handoff prefixes warm this way, and the tier-residency columns of
/// the bench rows come alive.
pub fn disagg_engine() -> EngineSpec {
    EngineSpec {
        evictor: Box::new(TieredEvictor::new(
            Box::new(LruEvictor),
            2 * L4_LITE.kv.capacity_tokens,
        )),
        ..EngineSpec::default()
    }
}

/// The disaggregation preset: a single-region, four-replica
/// [`L4_LITE`] fleet serving RAG traffic, either classically colocated
/// (`disagg = false`) or split into two prefill-only plus two
/// decode-only replicas (`disagg = true`). Both variants run the
/// [`disagg_engine`] two-tier cache, so the comparison isolates the
/// role split. Sweep both [`DisaggWorkload`] shapes and the P90 TTFT
/// verdict crosses over (`examples/disagg_shootout.rs`,
/// `BENCH_disagg.json`): the split pays when running decodes would
/// otherwise starve prefill admission, and loses when halving prefill
/// capacity just doubles the prompt queue.
pub fn disagg_scenario(workload: DisaggWorkload, disagg: bool, scale: f64, seed: u64) -> Scenario {
    let region = REGIONS[0];
    let users = ((32.0 * scale).round() as u32).max(2);
    let roles = if disagg {
        vec![
            ReplicaRole::PrefillOnly,
            ReplicaRole::PrefillOnly,
            ReplicaRole::DecodeOnly,
            ReplicaRole::DecodeOnly,
        ]
    } else {
        Vec::new()
    };
    let label = format!(
        "disagg/{}/{}",
        workload.label(),
        if disagg { "split" } else { "colo" }
    );
    SystemKind::SkyWalker
        .builder()
        .replicas(lite_fleet(&[(region, 4)]))
        .roles(roles)
        .traffic_source(Box::new(RagCorpusSource::new(
            workload.corpus(),
            vec![(region, users)],
            seed,
        )))
        .engine(disagg_engine())
        .label(label)
        .build()
        .expect("disagg preset sets a fleet and traffic")
}

/// A seed-parametric recipe of the disaggregation preset — the
/// sweep-harness counterpart of [`memory_pressure_recipe`] for the
/// split-vs-colocated comparison.
pub fn disagg_recipe(
    workload: DisaggWorkload,
    disagg: bool,
    scale: f64,
) -> impl Fn(u64) -> (Scenario, FabricConfig) + Clone + Send + Sync + 'static {
    move |seed| {
        let cfg = FabricConfig {
            seed,
            ..FabricConfig::default()
        };
        (disagg_scenario(workload, disagg, scale, seed), cfg)
    }
}

/// A seed-parametric recipe of one Fig. 8 grid cell, shaped for a sweep
/// harness (`skywalker-lab`'s `SweepSpec::cell`): the seed the sweep
/// derives per `(cell, replicate)` drives both the traffic generation
/// and the fabric's root seed, so every crossing of a sweep is an
/// independent, reproducible experiment.
pub fn fig8_recipe(
    system: SystemKind,
    workload: Workload,
    scale: f64,
) -> impl Fn(u64) -> (Scenario, FabricConfig) + Clone + Send + Sync + 'static {
    move |seed| {
        let cfg = FabricConfig {
            seed,
            ..FabricConfig::default()
        };
        (fig8_scenario(system, workload, scale, seed), cfg)
    }
}

/// A seed-parametric recipe of the compressed diurnal day
/// ([`fig10_diurnal_scenario`]) — the sweep-harness counterpart of
/// [`fig8_recipe`] for fleet-elasticity grids. Attach a fleet plan to
/// the returned scenario inside a wrapping closure to sweep autoscaler
/// variants.
pub fn diurnal_recipe(
    system: SystemKind,
    per_region: u32,
    day: SimDuration,
    scale: f64,
) -> impl Fn(u64) -> (Scenario, FabricConfig) + Clone + Send + Sync + 'static {
    move |seed| {
        let cfg = FabricConfig {
            seed,
            ..FabricConfig::default()
        };
        (
            fig10_diurnal_scenario(system, per_region, day, scale, seed),
            cfg,
        )
    }
}

/// The equal-cost static counterpart of an elastic run: a lite fleet
/// whose size matches the elastic run's time-weighted mean replica
/// count (`RunSummary::fleet.mean_total()`), rounded and split across
/// the trio with remainders going west-to-east — the same
/// replica-seconds, spent statically. Shared by the example, the e2e
/// test, and the bench so all three measure the same baseline.
pub fn equal_cost_lite_fleet(mean_total: f64) -> Vec<ReplicaPlacement> {
    let total = (mean_total.round() as u32).max(3);
    let (per, rem) = (total / 3, total % 3);
    lite_fleet(&[
        (REGIONS[0], per + u32::from(rem > 0)),
        (REGIONS[1], per + u32::from(rem > 1)),
        (REGIONS[2], per),
    ])
}

/// The reactive reference tunables of the compressed diurnal day —
/// the calibration table in `docs/fleet.md` §5, in code, so the
/// example, e2e test, and bench cannot silently diverge.
pub fn diurnal_reference_reactive() -> AutoscalerConfig {
    AutoscalerConfig {
        min_per_region: 1,
        max_per_region: 6,
        scale_out_load: 3.0,
        scale_in_load: 1.5,
        cooldown: SimDuration::from_secs(60),
        provision_delay: SimDuration::from_secs(20),
        profile: L4_LITE,
    }
}

/// The predictive reference tunables of the compressed diurnal day
/// (`docs/fleet.md` §5); `day`/`scale` must match the traffic source.
pub fn diurnal_reference_predictive(day: SimDuration, scale: f64) -> PredictiveConfig {
    PredictiveConfig {
        day,
        scale,
        per_replica_rph: 12.0,
        lead: SimDuration::from_secs(60),
        provision_delay: SimDuration::from_secs(20),
        min_per_region: 1,
        max_per_region: 6,
        profile: L4_LITE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skywalker_sim::SimTime;

    #[test]
    fn fleet_builders_place_replicas() {
        assert_eq!(balanced_fleet().len(), 12);
        assert_eq!(unbalanced_fleet().len(), 8);
        let fleet = l4_fleet(&[(REGIONS[0], 2), (REGIONS[2], 1)]);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet[0].region, REGIONS[0]);
        assert_eq!(fleet[2].region, REGIONS[2]);
    }

    #[test]
    fn workload_client_counts_match_paper_at_full_scale() {
        let arena = workload_clients(Workload::Arena, 1.0, 1);
        assert_eq!(arena.len(), 240, "80 clients per region");
        let wildchat = workload_clients(Workload::WildChat, 1.0, 1);
        assert_eq!(wildchat.len(), 100, "40 + 30 + 30");
        let tot = workload_clients(Workload::Tot, 1.0, 1);
        assert_eq!(tot.len(), 80, "40 + 20 + 20");
        // ToT: 2 trees of 15 requests each per client.
        assert!(tot.iter().all(|c| c.total_requests() == 30));
        let mixed = workload_clients(Workload::MixedTree, 1.0, 1);
        // 2 heavy US clients with 85-request trees.
        let heavy: Vec<_> = mixed.iter().filter(|c| c.total_requests() == 170).collect();
        assert_eq!(heavy.len(), 2);
        assert!(heavy.iter().all(|c| c.region == REGIONS[0]));
    }

    #[test]
    fn scale_shrinks_population_with_floor() {
        let small = workload_clients(Workload::Arena, 0.01, 1);
        assert_eq!(small.len(), 3, "floor of one client per region");
    }

    #[test]
    fn fig9_is_single_region() {
        let s = fig9_scenario(SystemKind::SkyWalker, 4, 10, 1);
        assert_eq!(s.replicas.len(), 4);
        assert!(s.replicas.iter().all(|r| r.region == REGIONS[0]));
        assert_eq!(s.traffic.regions(), vec![REGIONS[0]]);
        assert!(s
            .clients_until(SimTime::ZERO)
            .iter()
            .all(|c| c.region == REGIONS[0]));
    }

    /// `Workload::source` must generate exactly what the legacy eager
    /// generators produced, client for client and id for id.
    #[test]
    fn workload_sources_match_legacy_eager_generators() {
        let seed = 5;
        let n = |base: u32| ((f64::from(base) * 0.1).round() as u32).max(1);

        let mut ids = IdGen::new();
        let arena = generate_conversation_clients(
            &ConversationConfig::arena(),
            &[
                (REGIONS[0], n(80)),
                (REGIONS[1], n(80)),
                (REGIONS[2], n(80)),
            ],
            seed,
            &mut ids,
        );
        assert_eq!(arena, workload_clients(Workload::Arena, 0.1, seed));

        let mut ids = IdGen::new();
        let mut mixed =
            generate_tot_clients(&TotConfig::branch4(), &[(REGIONS[0], 2)], 2, seed, &mut ids);
        mixed.extend(generate_tot_clients(
            &TotConfig::branch2(),
            &[(REGIONS[1], n(20)), (REGIONS[2], n(20))],
            2,
            seed ^ 0xBEEF,
            &mut ids,
        ));
        assert_eq!(mixed, workload_clients(Workload::MixedTree, 0.1, seed));
    }

    #[test]
    fn fig10_fleet_split_covers_remainders() {
        for n in [3u32, 4, 5, 6, 7] {
            let s = fig10_scenario(SystemKind::SkyWalker, n, 0.1, 1);
            assert_eq!(s.replicas.len(), n as usize, "total {n}");
        }
    }

    #[test]
    fn workload_labels_stable() {
        assert_eq!(Workload::Arena.label(), "ChatBot Arena");
        assert_eq!(Workload::ALL.len(), 4);
    }

    #[test]
    fn recipes_are_pure_in_the_seed() {
        let recipe = fig8_recipe(SystemKind::SkyWalker, Workload::Tot, 0.02);
        let (a, cfg_a) = recipe(9);
        let (b, cfg_b) = recipe(9);
        assert_eq!(cfg_a.seed, 9);
        assert_eq!(cfg_b.seed, 9);
        assert_eq!(a.label, b.label);
        // Same seed → identical client populations.
        assert_eq!(
            a.clients_until(SimTime::ZERO),
            b.clients_until(SimTime::ZERO)
        );
        // Different seed → a different (but equally sized) population.
        let (c, _) = recipe(10);
        assert_eq!(
            a.clients_until(SimTime::ZERO).len(),
            c.clients_until(SimTime::ZERO).len()
        );

        let diurnal = diurnal_recipe(SystemKind::SkyWalker, 2, SimDuration::from_secs(600), 0.004);
        let (d, cfg_d) = diurnal(5);
        assert_eq!(cfg_d.seed, 5);
        assert_eq!(d.replicas.len(), 6);
    }
}
