//! Traffic sources the paper never shipped, implemented entirely outside
//! `skywalker-workload` — the proof that the workload axis is open, the
//! way [`crate::P2cLocal`] proves it for routing policies.
//!
//! - [`RagCorpusSource`]: retrieval-augmented generation over a shared
//!   document corpus. Every user's prompts start with one of a small
//!   pool of hot documents, so prefix reuse is *cross-user and global* —
//!   a similarity regime none of the paper's four workloads covers
//!   (conversations share within user/region, ToT shares within one
//!   question).
//! - [`FlashCrowdSource`]: a step-function regional overload. A modest
//!   steady population is joined, at a configured instant, by a burst of
//!   clients in one region all asking about the same trending topic —
//!   the arrival pattern that makes cross-region forwarding pay off in
//!   seconds rather than over a diurnal cycle.
//!
//! Both types only use the public [`TrafficSource`] surface: a struct,
//! `#[derive(Clone)]`, and the trait impl. Nothing in
//! `skywalker-workload` or the fabric names them.

use skywalker_net::Region;
use skywalker_replica::{output_token, Request};
use skywalker_sim::{DetRng, SimDuration, SimTime, Zipf};
use skywalker_workload::{
    distinct_regions, generate_conversation_user, region_of_slot, total_slots, ArrivalSchedule,
    ArrivalWalk, ClientEvent, ClientSpec, ConversationConfig, DiurnalProfile, IdGen, LengthModel,
    Program, TrafficSource,
};

/// Deterministic token stream for synthetic document/topic text.
fn fragment(label: u64, len: u32) -> Vec<u32> {
    (0..len)
        .map(|k| {
            let mut h = label ^ 0x6b_9d_3a_44_af_01_77_c3;
            h ^= u64::from(k).wrapping_mul(0x2545_f491_4f6c_dd1d);
            h = (h ^ (h >> 31)).wrapping_mul(0xff51_afd7_ed55_8ccd);
            (h >> 32) as u32
        })
        .collect()
}

fn mix(parts: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        h ^= p;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Tunables of the RAG shared-corpus workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RagCorpusConfig {
    /// Size of the shared document pool.
    pub corpus_docs: usize,
    /// Tokens per retrieved document block (the shared prompt prefix).
    pub doc_tokens: u32,
    /// Zipf exponent over document popularity — a few documents are hot.
    pub doc_zipf: f64,
    /// Fresh question tokens appended after the document.
    pub query_tokens: LengthModel,
    /// Answer length distribution.
    pub answer_tokens: LengthModel,
    /// Queries per user, inclusive clamp range.
    pub queries_per_user: (u32, u32),
}

impl Default for RagCorpusConfig {
    fn default() -> Self {
        RagCorpusConfig {
            corpus_docs: 24,
            doc_tokens: 512,
            doc_zipf: 1.2,
            query_tokens: LengthModel {
                mu: 3.4, // ≈ 30-token questions
                sigma: 0.7,
                min: 4,
                max: 512,
            },
            answer_tokens: LengthModel {
                mu: 4.8, // ≈ 120-token grounded answers
                sigma: 0.7,
                min: 8,
                max: 1_024,
            },
            queries_per_user: (3, 10),
        }
    }
}

/// Retrieval-augmented generation over a shared corpus: many users,
/// across every region, issuing independent queries whose prompts all
/// begin with one of a few hot documents. Cache-affinity routing can
/// keep each document's queries on one replica; load-blind routing
/// re-prefills the same 512-token context everywhere.
///
/// Implements [`TrafficSource`] from outside the workload crate; each
/// user's queries are generated lazily at the user's arrival instant.
#[derive(Debug, Clone)]
pub struct RagCorpusSource {
    cfg: RagCorpusConfig,
    users_per_region: Vec<(Region, u32)>,
    seed: u64,
    ids: IdGen,
    zipf: Zipf,
    walk: ArrivalWalk,
}

impl RagCorpusSource {
    /// A source over `users_per_region` `(region, user_count)` slots,
    /// all arriving at `t = 0`.
    pub fn new(cfg: RagCorpusConfig, users_per_region: Vec<(Region, u32)>, seed: u64) -> Self {
        let zipf = Zipf::new(cfg.corpus_docs.max(1), cfg.doc_zipf);
        let walk = ArrivalWalk::new(
            ArrivalSchedule::Immediate,
            total_slots(&users_per_region),
            seed,
        );
        RagCorpusSource {
            cfg,
            users_per_region,
            seed,
            ids: IdGen::new(),
            zipf,
            walk,
        }
    }

    /// Replaces the arrival schedule (default: everyone at `t = 0`).
    /// Builder-style: call before the source is first polled — see
    /// [`ArrivalWalk::reschedule`].
    pub fn with_schedule(mut self, schedule: ArrivalSchedule) -> Self {
        self.walk.reschedule(schedule);
        self
    }

    /// Offsets the request-id space (compose sources with disjoint ids).
    pub fn with_first_request_id(mut self, first: u64) -> Self {
        self.ids = IdGen::starting_at(first);
        self
    }

    fn generate_user(&mut self, slot: usize) -> ClientSpec {
        let region = region_of_slot(&self.users_per_region, slot);
        let user = format!("rag-user-{slot}");
        let mut rng = DetRng::for_component(self.seed, &format!("rag/{user}"));
        let (lo, hi) = self.cfg.queries_per_user;
        let n_queries = rng.range(u64::from(lo), u64::from(hi) + 1) as u32;
        let programs = (0..n_queries)
            .map(|q| {
                let doc = self.zipf.sample(&mut rng) as u64;
                // The document block is shared corpus-wide: every user
                // retrieving document `doc` gets the identical prefix.
                let mut prompt = fragment(mix(&[0xD0C, self.seed, doc]), self.cfg.doc_tokens);
                prompt.extend(fragment(
                    mix(&[0x9E1, self.seed, slot as u64, u64::from(q)]),
                    self.cfg.query_tokens.sample(&mut rng),
                ));
                let out_len = self.cfg.answer_tokens.sample(&mut rng);
                // Key the session by document, not user: affinity
                // routing then sees corpus structure directly.
                Program {
                    stages: vec![vec![Request::new(
                        self.ids.next_id(),
                        format!("doc-{doc}"),
                        prompt,
                        out_len,
                    )]],
                }
            })
            .collect();
        ClientSpec {
            region,
            user,
            programs,
        }
    }
}

impl TrafficSource for RagCorpusSource {
    fn regions(&self) -> Vec<Region> {
        distinct_regions(&self.users_per_region)
    }

    fn next_batch(&mut self, now: SimTime, _rng: &mut DetRng) -> Vec<ClientEvent> {
        let mut out = Vec::new();
        while let Some((slot, at)) = self.walk.pop_due(now) {
            let spec = self.generate_user(slot);
            out.push(ClientEvent { at, spec });
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.walk.is_exhausted()
    }

    fn label(&self) -> String {
        "RAG corpus".to_string()
    }
}

/// A step-function regional overload: `baseline` clients per region run
/// from `t = 0`; at `burst_at`, `burst_clients` additional clients come
/// online in `burst_region` (uniformly over `burst_window`), all asking
/// about the same trending topic. The burst's shared topic prefix and
/// its regional concentration are exactly the inputs selective pushing
/// and cross-region forwarding are built for.
///
/// Implements [`TrafficSource`] from outside the workload crate with a
/// hand-rolled arrival walk — no internal helpers required.
#[derive(Debug, Clone)]
pub struct FlashCrowdSource {
    baseline: Vec<(Region, u32)>,
    burst_region: Region,
    burst_clients: u32,
    burst_at: SimTime,
    burst_window: SimDuration,
    turns: (u32, u32),
    topic_tokens: u32,
    turn_input: LengthModel,
    turn_output: LengthModel,
    seed: u64,
    ids: IdGen,
    cursor: usize,
}

impl FlashCrowdSource {
    /// A steady `baseline` population plus a `burst_clients`-strong
    /// flash crowd in `burst_region` starting at `burst_at`.
    pub fn new(
        baseline: Vec<(Region, u32)>,
        burst_region: Region,
        burst_clients: u32,
        burst_at: SimTime,
        seed: u64,
    ) -> Self {
        FlashCrowdSource {
            baseline,
            burst_region,
            burst_clients,
            burst_at,
            burst_window: SimDuration::from_secs(10),
            turns: (1, 3),
            topic_tokens: 96,
            turn_input: LengthModel {
                mu: 3.6, // ≈ 37-token questions about the topic
                sigma: 0.8,
                min: 4,
                max: 1_024,
            },
            turn_output: LengthModel {
                mu: 4.6, // ≈ 100-token replies
                sigma: 0.8,
                min: 4,
                max: 2_048,
            },
            seed,
            ids: IdGen::new(),
            cursor: 0,
        }
    }

    /// Spreads the burst's arrivals over `window` (default 10 s).
    pub fn with_burst_window(mut self, window: SimDuration) -> Self {
        self.burst_window = window;
        self
    }

    /// Conversation turns per client, inclusive range (default 1–3).
    pub fn with_turns(mut self, turns: (u32, u32)) -> Self {
        self.turns = turns;
        self
    }

    /// Offsets the request-id space (compose sources with disjoint ids).
    pub fn with_first_request_id(mut self, first: u64) -> Self {
        self.ids = IdGen::starting_at(first);
        self
    }

    fn baseline_total(&self) -> usize {
        self.baseline.iter().map(|&(_, n)| n as usize).sum()
    }

    fn total(&self) -> usize {
        self.baseline_total() + self.burst_clients as usize
    }

    /// Arrival instant and region of the `k`-th client: baseline slots
    /// at `t = 0`, then the burst ramping over its window.
    fn slot(&self, k: usize) -> (SimTime, Region) {
        let base_total = self.baseline_total();
        if k < base_total {
            let mut j = k as u64;
            for &(region, count) in &self.baseline {
                if j < u64::from(count) {
                    return (SimTime::ZERO, region);
                }
                j -= u64::from(count);
            }
        }
        let j = (k - base_total) as u64;
        let span = u64::from(self.burst_clients).saturating_sub(1).max(1);
        let offset = SimDuration::from_micros(self.burst_window.as_micros() * j / span);
        (self.burst_at + offset, self.burst_region)
    }

    fn generate_client(&mut self, slot: usize, region: Region, bursty: bool) -> ClientSpec {
        let user = format!("flash-user-{slot}");
        let mut rng = DetRng::for_component(self.seed, &format!("flash/{user}"));
        let (lo, hi) = self.turns;
        let turns = rng.range(u64::from(lo.max(1)), u64::from(hi.max(1)) + 1) as u32;
        // Burst clients all open with the same trending-topic context;
        // baseline clients each talk about their own subject.
        let topic = if bursty {
            fragment(mix(&[0x7287, self.seed]), self.topic_tokens)
        } else {
            fragment(mix(&[0xBA5E, self.seed, slot as u64]), self.topic_tokens)
        };
        let mut history = topic;
        let mut stages = Vec::with_capacity(turns as usize);
        for turn in 0..turns {
            history.extend(fragment(
                mix(&[0xF00D, self.seed, slot as u64, u64::from(turn)]),
                self.turn_input.sample(&mut rng),
            ));
            let out_len = self.turn_output.sample(&mut rng);
            let id = self.ids.next_id();
            stages.push(vec![Request::new(
                id,
                format!("{user}/trend"),
                history.clone(),
                out_len,
            )]);
            history.extend((0..out_len).map(|k| output_token(id, k)));
        }
        ClientSpec {
            region,
            user,
            programs: vec![Program { stages }],
        }
    }
}

impl TrafficSource for FlashCrowdSource {
    fn regions(&self) -> Vec<Region> {
        let mut out = Vec::new();
        for &(region, _) in &self.baseline {
            if !out.contains(&region) {
                out.push(region);
            }
        }
        if !out.contains(&self.burst_region) {
            out.push(self.burst_region);
        }
        out
    }

    fn next_batch(&mut self, now: SimTime, _rng: &mut DetRng) -> Vec<ClientEvent> {
        let mut out = Vec::new();
        while self.cursor < self.total() {
            let (at, region) = self.slot(self.cursor);
            if at > now {
                break;
            }
            let bursty = self.cursor >= self.baseline_total();
            let spec = self.generate_client(self.cursor, region, bursty);
            out.push(ClientEvent { at, spec });
            self.cursor += 1;
        }
        out
    }

    fn is_exhausted(&self) -> bool {
        self.cursor >= self.total()
    }

    fn label(&self) -> String {
        "Flash crowd".to_string()
    }
}

/// A compressed diurnal day of chat traffic: per-region arrival *rates*
/// follow the paper's Fig. 2/3a raised-cosine curves
/// ([`DiurnalProfile`]), mapped onto a simulated `day` much shorter
/// than 24 h so a whole cycle fits in one run. Each arrival is a light
/// chat user generated by the conversation machinery.
///
/// This is the traffic side of the Fig. 10 elasticity experiment:
/// per-region demand swings 2.88–32.64× over the day, which a static
/// fleet must provision for peak and an elastic fleet (see
/// `skywalker-fleet`) can track. Implements [`TrafficSource`] from
/// outside the workload crate.
///
/// Arrival instants are fixed at construction from the source's own
/// seed (8 bytes per arrival); client *content* is generated lazily at
/// each arrival's emission through the workload crate's per-user
/// generator, so memory tracks the active population — the streaming
/// property every built-in source keeps — and emission is poll-cadence
/// invariant.
#[derive(Debug, Clone)]
pub struct DiurnalSource {
    cfg: ConversationConfig,
    lanes: Vec<DiurnalLane>,
    global_zipf: Zipf,
    regional_zipf: Option<Zipf>,
    label: String,
}

/// One region's slice of the day: its kept arrival instants plus the
/// lazy-generation cursors. Each lane owns a disjoint request-id and
/// user-id range, so lanes generate independently of interleaving.
#[derive(Debug, Clone)]
struct DiurnalLane {
    region: Region,
    /// Kept arrival instants, sorted.
    times: Vec<SimTime>,
    cursor: usize,
    ids: IdGen,
    user_base: u64,
    content_seed: u64,
}

impl DiurnalSource {
    /// A day of traffic over `profiles` (per-region rate curves at
    /// trace scale, requests per hour), compressed into `day` of sim
    /// time, keeping a `scale` fraction of the trace's arrivals; each
    /// kept arrival is one chat user built from `cfg`.
    pub fn new(
        profiles: &[(Region, DiurnalProfile)],
        day: SimDuration,
        scale: f64,
        cfg: &ConversationConfig,
        seed: u64,
    ) -> Self {
        let lanes = profiles
            .iter()
            .enumerate()
            .map(|(slot, (region, profile))| {
                let mut rng = DetRng::for_component(seed ^ slot as u64, "sources/diurnal");
                let times: Vec<SimTime> = profile
                    .sample_arrivals(&mut rng)
                    .into_iter()
                    .filter(|_| rng.chance(scale))
                    .map(|t_real| SimTime::ZERO + day.mul_f64(t_real / 86_400.0))
                    .collect();
                DiurnalLane {
                    region: *region,
                    times,
                    cursor: 0,
                    // Disjoint id spaces per lane: ids only need to be
                    // unique, not dense, so a wide stride suffices for
                    // any realistic day.
                    ids: IdGen::starting_at((slot as u64) << 40),
                    user_base: (slot as u64) << 32,
                    content_seed: seed ^ mix(&[slot as u64, 0xD1A1]),
                }
            })
            .collect();
        let global_zipf = Zipf::new(cfg.global_templates.max(1), cfg.template_zipf);
        let regional_zipf = (cfg.regional_templates > 0)
            .then(|| Zipf::new(cfg.regional_templates, cfg.template_zipf));
        DiurnalSource {
            cfg: cfg.clone(),
            lanes,
            global_zipf,
            regional_zipf,
            label: "Diurnal day".to_string(),
        }
    }

    /// A light per-user chat mix (one short conversation per user), the
    /// natural content for an open-loop diurnal feed.
    pub fn light_chat() -> ConversationConfig {
        ConversationConfig {
            conversations_per_user: (1, 2),
            turns_per_conversation: (2, 3),
            activity_sigma: 0.4,
            ..ConversationConfig::wildchat()
        }
    }

    /// Total arrivals over the whole day.
    pub fn total_clients(&self) -> usize {
        self.lanes.iter().map(|l| l.times.len()).sum()
    }

    /// Overrides the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl TrafficSource for DiurnalSource {
    fn regions(&self) -> Vec<Region> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            if !out.contains(&lane.region) {
                out.push(lane.region);
            }
        }
        out
    }

    fn next_batch(&mut self, now: SimTime, _rng: &mut DetRng) -> Vec<ClientEvent> {
        let mut out = Vec::new();
        for lane in &mut self.lanes {
            while let Some(&at) = lane.times.get(lane.cursor) {
                if at > now {
                    break;
                }
                let user_id = lane.user_base + lane.cursor as u64;
                lane.cursor += 1;
                let spec = generate_conversation_user(
                    &self.cfg,
                    lane.region,
                    user_id,
                    lane.content_seed,
                    &mut lane.ids,
                    &self.global_zipf,
                    self.regional_zipf.as_ref(),
                );
                out.push(ClientEvent { at, spec });
            }
        }
        // Stable sort: same-instant arrivals keep lane order.
        out.sort_by_key(|e| e.at);
        out
    }

    fn is_exhausted(&self) -> bool {
        self.lanes.iter().all(|l| l.cursor >= l.times.len())
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skywalker_workload::{drain, fig3_regions};

    #[test]
    fn diurnal_source_follows_the_rate_curve() {
        let day = SimDuration::from_secs(1_200);
        let profiles: Vec<_> = fig3_regions()
            .into_iter()
            .filter(|(r, _)| *r == Region::UsEast)
            .collect();
        let src = DiurnalSource::new(&profiles, day, 0.05, &DiurnalSource::light_chat(), 7);
        assert_eq!(src.regions(), vec![Region::UsEast]);
        let total = src.total_clients();
        assert!(total > 50, "enough arrivals to see the shape: {total}");
        // us-east-1 peaks at 14:00 local = 19:00 UTC and troughs in the
        // local early morning: compare the busiest and quietest sixths
        // of the compressed day.
        let mut per_sixth = [0usize; 6];
        let mut probe = src.clone();
        let mut rng = DetRng::new(0);
        for (k, sixth) in per_sixth.iter_mut().enumerate() {
            let until = SimTime::ZERO + day.mul_f64((k as f64 + 1.0) / 6.0);
            // Batches are incremental: each poll returns only the new
            // arrivals of that sixth.
            *sixth = probe.next_batch(until, &mut rng).len();
        }
        let max = per_sixth.iter().max().unwrap();
        let min = per_sixth.iter().min().unwrap();
        assert!(
            *max >= 2 * (*min).max(1),
            "diurnal swing must be visible: {per_sixth:?}"
        );
        assert!(probe.is_exhausted());
    }

    #[test]
    fn diurnal_source_is_poll_cadence_invariant() {
        let day = SimDuration::from_secs(600);
        let profiles = fig3_regions();
        let mk = || DiurnalSource::new(&profiles, day, 0.01, &DiurnalSource::light_chat(), 3);
        let mut coarse = mk();
        let mut fine = mk();
        let mut rng = DetRng::new(0);
        let mut a = Vec::new();
        for s in [0u64, 300, 600] {
            a.extend(coarse.next_batch(SimTime::from_secs(s), &mut rng));
        }
        let mut b = Vec::new();
        for s in (0..=600u64).step_by(20) {
            b.extend(fine.next_batch(SimTime::from_secs(s), &mut rng));
        }
        assert_eq!(a, b, "batching granularity must not change the stream");
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // Ids are globally unique across regions.
        let mut ids: Vec<u64> = a
            .iter()
            .flat_map(|e| e.spec.programs.iter())
            .flat_map(|p| p.requests())
            .map(|r| r.id.0)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn rag_prompts_share_hot_document_prefixes_across_users() {
        let mut src = RagCorpusSource::new(
            RagCorpusConfig::default(),
            vec![(Region::UsEast, 10), (Region::EuWest, 10)],
            3,
        );
        let clients = drain(&mut src);
        assert_eq!(clients.len(), 20);

        // Group every prompt by its session key (the document id): all
        // prompts of one document must share the full document prefix,
        // across users and regions.
        use std::collections::HashMap;
        let mut by_doc: HashMap<String, Vec<&Request>> = HashMap::new();
        for c in &clients {
            for p in &c.programs {
                for r in p.requests() {
                    by_doc.entry(r.session_key.clone()).or_default().push(r);
                }
            }
        }
        let doc_tokens = RagCorpusConfig::default().doc_tokens as usize;
        let mut shared_pairs = 0;
        for reqs in by_doc.values() {
            for pair in reqs.windows(2) {
                assert_eq!(
                    &pair[0].prompt[..doc_tokens],
                    &pair[1].prompt[..doc_tokens],
                    "same doc ⇒ identical document block"
                );
                shared_pairs += 1;
            }
        }
        assert!(shared_pairs > 0, "zipf popularity must produce hot docs");
        // And the sharing is genuinely cross-user: at least one document
        // is retrieved by two different users.
        let multi_user = by_doc.values().any(|reqs| {
            let docs_users: std::collections::HashSet<_> = reqs
                .iter()
                .map(|r| r.prompt[doc_tokens..].first().copied())
                .collect();
            docs_users.len() > 1
        });
        assert!(multi_user);
    }

    #[test]
    fn rag_ids_unique_and_deterministic() {
        let regions = vec![(Region::UsEast, 8)];
        let a = drain(&mut RagCorpusSource::new(
            RagCorpusConfig::default(),
            regions.clone(),
            7,
        ));
        let b = drain(&mut RagCorpusSource::new(
            RagCorpusConfig::default(),
            regions,
            7,
        ));
        assert_eq!(a, b);
        let mut ids: Vec<u64> = a
            .iter()
            .flat_map(|c| c.programs.iter())
            .flat_map(|p| p.requests())
            .map(|r| r.id.0)
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn flash_crowd_bursts_at_the_step() {
        let burst_at = SimTime::from_secs(30);
        let mut src = FlashCrowdSource::new(
            vec![(Region::UsEast, 3), (Region::EuWest, 3)],
            Region::EuWest,
            12,
            burst_at,
            5,
        )
        .with_burst_window(SimDuration::from_secs(6));
        assert_eq!(src.regions(), vec![Region::UsEast, Region::EuWest]);

        let mut rng = DetRng::new(0);
        let early = src.next_batch(SimTime::from_secs(29), &mut rng);
        assert_eq!(early.len(), 6, "only the baseline before the step");
        assert!(early.iter().all(|e| e.at == SimTime::ZERO));
        assert!(!src.is_exhausted());

        let late = src.next_batch(SimTime::from_secs(40), &mut rng);
        assert_eq!(late.len(), 12, "the whole crowd inside the window");
        assert!(late.iter().all(|e| e.spec.region == Region::EuWest));
        assert!(late.iter().all(|e| e.at >= burst_at));
        assert_eq!(late.last().unwrap().at, SimTime::from_secs(36));
        assert!(src.is_exhausted());

        // Burst clients share the trending prefix; baseline clients do
        // not share it with them.
        let topic_len = 96;
        let t0 = &late[0].spec.programs[0].stages[0][0].prompt[..topic_len];
        assert!(late
            .iter()
            .all(|e| &e.spec.programs[0].stages[0][0].prompt[..topic_len] == t0));
        assert_ne!(
            &early[0].spec.programs[0].stages[0][0].prompt[..topic_len],
            t0
        );
    }
}
