//! A diurnal-aware *predictive* autoscaler, implemented entirely outside
//! `skywalker-fleet` — the proof that the fleet axis is open, the way
//! [`crate::P2cLocal`] proves it for routing policies and
//! [`crate::RagCorpusSource`] for traffic.
//!
//! The reactive [`ThresholdAutoscaler`](skywalker_fleet::ThresholdAutoscaler)
//! waits for queues to build before adding capacity, so every morning
//! ramp pays the provisioning delay in latency. This planner knows the
//! paper's Fig. 2/3a structure — per-region demand follows a predictable
//! raised-cosine day — and provisions *ahead* of the curve: at every
//! poll it computes each region's predicted arrival rate one lead
//! interval in the future and steers the fleet toward
//! `ceil(predicted_rate / per_replica_rate)`, clamped to bounds.
//!
//! Only the public [`FleetPlan`] surface is used: a struct,
//! `#[derive(Clone)]`, and the trait impl. Nothing in `skywalker-fleet`
//! or the fabric names this type.

use skywalker_fleet::{FleetCommand, FleetEvent, FleetObservation, FleetPlan, ProvisionLedger};
use skywalker_net::Region;
use skywalker_replica::GpuProfile;
use skywalker_sim::{DetRng, SimDuration, SimTime};
use skywalker_workload::DiurnalProfile;

/// Tunables of the predictive autoscaler. The `day`/`scale` pair must
/// match the traffic source's compression (see
/// [`crate::DiurnalSource`]) so predicted rates line up with actual
/// arrivals.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveConfig {
    /// Sim duration representing 24 h of the rate curves.
    pub day: SimDuration,
    /// Fraction of the trace-scale arrivals the traffic source keeps.
    pub scale: f64,
    /// Kept (post-`scale`) arrivals per compressed hour one replica
    /// absorbs comfortably: a region's target is
    /// `ceil(rate · scale / per_replica_rph)`.
    pub per_replica_rph: f64,
    /// How far ahead of "now" to read the curve — at least the
    /// provisioning delay, so capacity lands before the demand does.
    pub lead: SimDuration,
    /// Delay between a scale-out decision and the replica coming online.
    pub provision_delay: SimDuration,
    /// Per-region fleet bounds.
    pub min_per_region: u32,
    /// Upper bound per region.
    pub max_per_region: u32,
    /// Hardware profile of scaled-out replicas.
    pub profile: GpuProfile,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            day: SimDuration::from_secs(1_200),
            scale: 0.02,
            per_replica_rph: 600.0,
            lead: SimDuration::from_secs(60),
            provision_delay: SimDuration::from_secs(30),
            min_per_region: 1,
            max_per_region: 8,
            profile: GpuProfile::L4_LLAMA_8B,
        }
    }
}

/// The diurnal-aware predictive fleet plan. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct PredictiveAutoscaler {
    cfg: PredictiveConfig,
    profiles: Vec<(Region, DiurnalProfile)>,
    /// Joins emitted but not yet online.
    provisioning: ProvisionLedger,
}

impl PredictiveAutoscaler {
    /// A planner steering toward the demand predicted by `profiles`
    /// (the same per-region curves that drive the traffic).
    pub fn new(profiles: Vec<(Region, DiurnalProfile)>, cfg: PredictiveConfig) -> Self {
        PredictiveAutoscaler {
            cfg,
            profiles,
            provisioning: ProvisionLedger::new(),
        }
    }

    /// The replica count `region` should run at UTC hour `hour`.
    pub fn target_at(&self, region: Region, hour: f64) -> u32 {
        let rate: f64 = self
            .profiles
            .iter()
            .filter(|(r, _)| *r == region)
            .map(|(_, p)| p.rate_at_utc(hour))
            .sum();
        let want = (rate * self.cfg.scale / self.cfg.per_replica_rph).ceil() as u32;
        want.clamp(self.cfg.min_per_region, self.cfg.max_per_region)
    }
}

impl FleetPlan for PredictiveAutoscaler {
    fn next_events(
        &mut self,
        _horizon: SimTime,
        obs: &FleetObservation,
        _rng: &mut DetRng,
    ) -> Vec<FleetCommand> {
        let now = obs.now;
        self.provisioning.prune(now);
        let ahead = now + self.cfg.lead;
        let hour = ahead.as_secs_f64() / self.cfg.day.as_secs_f64() * 24.0;
        let mut out = Vec::new();
        let regions: Vec<Region> = self.profiles.iter().map(|(r, _)| *r).collect();
        for region in regions {
            let target = self.target_at(region, hour);
            let live = obs.live_in(region);
            let provisioning = self.provisioning.in_flight(region);
            let effective = live + provisioning;
            if target > effective {
                let online_at = now + self.cfg.provision_delay;
                for _ in 0..(target - effective) {
                    out.push(FleetCommand::new(
                        online_at,
                        FleetEvent::ReplicaJoin {
                            region,
                            profile: self.cfg.profile,
                        },
                    ));
                    self.provisioning.note(region, online_at);
                }
            } else if target < live && provisioning == 0 {
                // Steer down toward the curve, draining the shared
                // least-loaded-then-youngest victims.
                for replica in obs.drain_candidates(region, (live - target) as usize) {
                    out.push(FleetCommand::new(now, FleetEvent::ReplicaDrain { replica }));
                }
            }
        }
        out
    }

    fn is_done(&self) -> bool {
        false
    }

    fn label(&self) -> String {
        format!(
            "predictive(lead={:.0}s,{}..{})",
            self.cfg.lead.as_secs_f64(),
            self.cfg.min_per_region,
            self.cfg.max_per_region
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skywalker_fleet::{LbObservation, ReplicaObservation};
    use skywalker_replica::ReplicaId;
    use skywalker_workload::fig3_regions;

    fn planner() -> PredictiveAutoscaler {
        let profiles: Vec<_> = fig3_regions()
            .into_iter()
            .filter(|(r, _)| *r == Region::UsEast)
            .collect();
        PredictiveAutoscaler::new(
            profiles,
            PredictiveConfig {
                day: SimDuration::from_secs(2_400),
                scale: 1.0,
                per_replica_rph: 1_000.0,
                lead: SimDuration::from_secs(100),
                provision_delay: SimDuration::from_secs(50),
                min_per_region: 1,
                max_per_region: 6,
                ..PredictiveConfig::default()
            },
        )
    }

    fn obs(now: SimTime, live: u32) -> FleetObservation {
        FleetObservation {
            now,
            replicas: (0..live)
                .map(|i| ReplicaObservation {
                    id: ReplicaId(i),
                    region: Region::UsEast,
                    pending: 0,
                    running: i,
                    kv_utilization: 0.2,
                    draining: false,
                })
                .collect(),
            balancers: vec![LbObservation {
                index: 0,
                region: Region::UsEast,
                queue: 0,
                outstanding: 0,
                alive: true,
            }],
        }
    }

    #[test]
    fn targets_track_the_curve() {
        let p = planner();
        // us-east-1 (UTC-5) peaks at 14:00 local = 19:00 UTC and troughs
        // around 02:00 local = 07:00 UTC.
        let peak = p.target_at(Region::UsEast, 19.0);
        let trough = p.target_at(Region::UsEast, 7.0);
        assert!(peak > trough, "peak {peak} vs trough {trough}");
        assert!(peak <= 6 && trough >= 1, "bounds respected");
    }

    #[test]
    fn provisions_ahead_of_the_ramp() {
        let mut p = planner();
        let mut rng = DetRng::new(0);
        // 2400 s day, so 19:00 UTC ≈ t = 1900 s. At t = 1700 the lead
        // (100 s) reads the curve near the ramp; demand exceeds one
        // replica well before the peak.
        let cmds = p.next_events(
            SimTime::from_secs(1_700),
            &obs(SimTime::from_secs(1_700), 1),
            &mut rng,
        );
        assert!(!cmds.is_empty(), "the ramp must trigger pre-provisioning");
        assert!(cmds.iter().all(|c| matches!(
            c.event,
            FleetEvent::ReplicaJoin {
                region: Region::UsEast,
                ..
            }
        )));
        assert!(
            cmds.iter().all(|c| c.at == SimTime::from_secs(1_750)),
            "joins land after the provisioning delay"
        );
        // Re-polling immediately emits nothing more: the in-flight joins
        // already cover the target.
        let again = p.next_events(
            SimTime::from_secs(1_701),
            &obs(SimTime::from_secs(1_701), 1),
            &mut rng,
        );
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn steers_down_in_the_trough() {
        let mut p = planner();
        let mut rng = DetRng::new(0);
        // 07:00 UTC ≈ t = 700 s: the trough wants far fewer than 5.
        let o = obs(SimTime::from_secs(700), 5);
        let cmds = p.next_events(SimTime::from_secs(700), &o, &mut rng);
        let target = p.target_at(Region::UsEast, (700.0 + 100.0) / 2_400.0 * 24.0);
        assert_eq!(cmds.len(), (5 - target) as usize);
        // Least-loaded victims first (load equals id in the fixture).
        assert!(matches!(
            cmds[0].event,
            FleetEvent::ReplicaDrain {
                replica: ReplicaId(0)
            }
        ));
        assert!(!p.is_done());
    }
}
