//! The multi-region deployment fabric: a discrete-event simulation wiring
//! clients, DNS, load balancers, the wide-area network, replicas, and the
//! controller into one reproducible world.
//!
//! This is the substrate on which every end-to-end experiment of the
//! paper runs (§5): the same [`RegionalBalancer`] / [`Replica`] state
//! machines the live TCP mode uses, driven here by a virtual clock. One
//! [`Scenario`] describes a deployment (which system, where the replicas
//! are, who the clients are, what faults to inject); [`run_scenario`]
//! plays it out and returns a [`RunSummary`] with the paper's metrics:
//! service throughput, TTFT and end-to-end latency distributions,
//! KV-cache hit rate, and load-balance diagnostics.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use skywalker_core::{
    BalancerConfig, ControlAction, Controller, Decision, LbId, PolicyFactory, PolicyKind, PushMode,
    RegionalBalancer, RoutingConstraint,
};
use skywalker_fleet::{
    FleetCommand, FleetEvent, FleetObservation, FleetPlan, LbObservation, MergePlan,
    ReplicaObservation, ScheduledPlan,
};
use skywalker_metrics::{peak_gap, RequestTracker, RunReport, TimeSeries};
use skywalker_net::{DnsResolver, Endpoint, LatencyModel, Region};
use skywalker_replica::{
    output_token, BatchPolicy, Completion, EngineSpec, GpuProfile, KvEvictor, Replica, ReplicaId,
    ReplicaRole, ReplicaStats, Request, RequestId,
};
use skywalker_sim::{DetRng, Engine, Scheduler, SimDuration, SimTime, World};
use skywalker_telemetry::{MetricsRegistry, RingSeries, TelemetryConfig, TelemetrySummary};
use skywalker_trace::{TraceConfig, TraceEventKind, TraceRecorder, TraceSummary};
use skywalker_workload::{ClientEvent, ClientListSource, ClientSpec, TrafficSource};

/// Which serving system to deploy — the seven systems of Fig. 8 plus the
/// region-local baseline of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// GKE Gateway: per-region entry, least-connection spill across
    /// clusters, no LLM awareness.
    GkeGateway,
    /// Round robin behind one centralized balancer.
    RoundRobin,
    /// Least load behind one centralized balancer.
    LeastLoad,
    /// Consistent hashing behind one centralized balancer.
    ConsistentHash,
    /// SGLang Router: cache-aware policy, blind pushing, centralized.
    SglRouter,
    /// SkyWalker-CH: geo-distributed, ring hashing, SP-P.
    SkyWalkerCh,
    /// SkyWalker: geo-distributed, prefix trees, SP-P.
    SkyWalker,
    /// Region-local: per-region balancer, no cross-region forwarding.
    RegionLocal,
}

impl SystemKind {
    /// All seven systems of the Fig. 8 comparison, in the paper's order.
    pub const FIG8: [SystemKind; 7] = [
        SystemKind::GkeGateway,
        SystemKind::RoundRobin,
        SystemKind::LeastLoad,
        SystemKind::ConsistentHash,
        SystemKind::SglRouter,
        SystemKind::SkyWalkerCh,
        SystemKind::SkyWalker,
    ];

    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::GkeGateway => "GKE Gateway",
            SystemKind::RoundRobin => "RR",
            SystemKind::LeastLoad => "LL",
            SystemKind::ConsistentHash => "CH",
            SystemKind::SglRouter => "SGL",
            SystemKind::SkyWalkerCh => "SkyWalker-CH",
            SystemKind::SkyWalker => "SkyWalker",
            SystemKind::RegionLocal => "Region-Local",
        }
    }

    /// A [`ScenarioBuilder`] preconfigured with this system's label and
    /// deployment shape — the FIG8 presets are thin wrappers over the
    /// builder.
    pub fn builder(&self) -> ScenarioBuilder {
        Scenario::builder().system(*self)
    }

    /// The deployment shape this system uses.
    pub fn deployment(&self) -> Deployment {
        match self {
            SystemKind::GkeGateway => Deployment::PerRegion {
                policy: PolicyKind::LeastLoad,
                push: PushMode::Outstanding { max: 8 },
                forward: true,
                tau: 8,
                constraint: RoutingConstraint::Unrestricted,
            },
            SystemKind::RoundRobin => Deployment::centralized(PolicyKind::RoundRobin),
            SystemKind::LeastLoad => Deployment::centralized(PolicyKind::LeastLoad),
            SystemKind::ConsistentHash => Deployment::centralized(PolicyKind::ConsistentHash),
            SystemKind::SglRouter => Deployment::centralized(PolicyKind::CacheAware),
            SystemKind::SkyWalkerCh => Deployment::PerRegion {
                policy: PolicyKind::ConsistentHash,
                push: PushMode::Pending,
                forward: true,
                tau: 4,
                constraint: RoutingConstraint::Unrestricted,
            },
            SystemKind::SkyWalker => Deployment::PerRegion {
                policy: PolicyKind::CacheAware,
                push: PushMode::Pending,
                forward: true,
                tau: 4,
                constraint: RoutingConstraint::Unrestricted,
            },
            SystemKind::RegionLocal => Deployment::PerRegion {
                policy: PolicyKind::CacheAware,
                push: PushMode::Pending,
                forward: false,
                tau: 4,
                constraint: RoutingConstraint::Unrestricted,
            },
        }
    }
}

/// Deployment shape: where balancers sit and how they behave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// One balancer in `lb_region` fronting every replica everywhere —
    /// the naive global coordinator of Fig. 1(b).
    Centralized {
        /// Where the single balancer runs (the paper deploys it in the
        /// US).
        lb_region: Region,
        /// Placement policy.
        policy: PolicyKind,
        /// Admission discipline.
        push: PushMode,
    },
    /// One balancer per region that hosts replicas or clients —
    /// SkyWalker's shape (Fig. 1(c)), also used for region-local and
    /// gateway baselines.
    PerRegion {
        /// Placement policy (both layers).
        policy: PolicyKind,
        /// Admission discipline.
        push: PushMode,
        /// Whether cross-region forwarding is enabled.
        forward: bool,
        /// Peer queue buffer τ.
        tau: u32,
        /// Regulatory constraint.
        constraint: RoutingConstraint,
    },
}

impl Deployment {
    fn centralized(policy: PolicyKind) -> Self {
        Deployment::Centralized {
            lb_region: Region::UsEast,
            policy,
            push: PushMode::Blind,
        }
    }
}

/// A replica to deploy.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaPlacement {
    /// Region hosting the replica.
    pub region: Region,
    /// GPU/model profile.
    pub profile: GpuProfile,
}

/// Take a balancer down (or bring it back) at a point in time — the §4.2
/// failure-recovery drills.
///
/// This is the legacy closed schedule, kept as a convenience: the
/// fabric turns a `Vec<FaultEvent>` into a [`ScheduledPlan`] of
/// [`FleetEvent::LbDown`]/[`FleetEvent::LbUp`] commands (pinned
/// byte-identical by `tests/failover.rs`). New code — and anything
/// beyond balancer flaps, like replica churn or autoscaling — should
/// use [`ScenarioBuilder::fleet_plan`] directly.
#[derive(Debug, Clone, Copy)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// Index of the balancer (by creation order) to affect.
    pub lb_index: u32,
    /// True = crash, false = recover.
    pub down: bool,
}

/// One experiment: a deployment shape, a policy, a fleet, a traffic
/// source, faults.
///
/// Build one with [`Scenario::builder`] (any combination of deployment,
/// custom [`PolicyFactory`], fleet, workload or [`TrafficSource`],
/// faults, and constraint), or with [`Scenario::new`] for a preset
/// [`SystemKind`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label for experiment tables.
    pub label: String,
    /// The preset this scenario was derived from, if any. Custom-built
    /// scenarios have `None` here — nothing in the fabric dispatches on
    /// it.
    pub system: Option<SystemKind>,
    /// The deployment shape to run.
    pub deployment: Deployment,
    /// Builds the routing policies for every balancer. `None` runs the
    /// built-in [`PolicyKind`] named by the deployment.
    pub policy_factory: Option<Arc<dyn PolicyFactory>>,
    /// The replica fleet.
    pub replicas: Vec<ReplicaPlacement>,
    /// Serving role per replica, indexed like `replicas`. Shorter
    /// vectors are padded with [`ReplicaRole::Colocated`], so an empty
    /// vector (the default) is the classical colocated fleet.
    /// [`ReplicaRole::PrefillOnly`] replicas hand every request off to
    /// a decode-capable peer after the prompt phase;
    /// [`ReplicaRole::DecodeOnly`] replicas are invisible to the
    /// balancers and accept only those handoffs.
    pub roles: Vec<ReplicaRole>,
    /// The client traffic. Each run clones the source, so the same
    /// scenario can be replayed any number of times; pre-materialized
    /// populations ride along as a [`ClientListSource`].
    pub traffic: Box<dyn TrafficSource>,
    /// Balancer fault injections — the legacy closed schedule, applied
    /// as a [`ScheduledPlan`] alongside (and merged with) `fleet_plan`.
    pub faults: Vec<FaultEvent>,
    /// The fleet control plane: a streaming plan the fabric polls for
    /// joins, drains, crashes, and balancer flaps as sim time advances.
    /// `None` runs a static fleet (plus whatever `faults` injects).
    pub fleet_plan: Option<Box<dyn FleetPlan>>,
    /// The serving engine every replica runs (batch policy + KV
    /// evictor), cloned per replica — including replicas a fleet plan
    /// joins mid-run. `None` runs the default engine (`FcfsBatch` +
    /// `LruEvictor`, the historical behavior).
    pub engine: Option<EngineSpec>,
}

impl Scenario {
    /// A fault-free scenario with the system's standard deployment.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `clients` is empty — use
    /// [`Scenario::builder`] and handle [`ScenarioError`] to validate
    /// dynamic inputs.
    pub fn new(
        system: SystemKind,
        replicas: Vec<ReplicaPlacement>,
        clients: Vec<ClientSpec>,
    ) -> Self {
        system
            .builder()
            .replicas(replicas)
            .clients(clients)
            .build()
            .expect("Scenario::new requires a non-empty fleet and client population")
    }

    /// An empty builder: configure deployment, policy, fleet, workload,
    /// faults, and constraints fluently, then [`ScenarioBuilder::build`].
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Overrides the deployment shape (ablation studies).
    pub fn with_deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = deployment;
        self
    }

    /// Materializes the clients a fresh copy of the traffic source would
    /// emit by `until` — inspection/testing helper (e.g. expected-request
    /// accounting). The run itself never calls this; it pulls from the
    /// source incrementally. With `until = SimTime::MAX` an *unbounded*
    /// source will generate without returning — pass a bounded horizon
    /// for open-ended feeds.
    pub fn clients_until(&self, until: SimTime) -> Vec<ClientSpec> {
        let mut source = self.traffic.clone();
        let mut rng = DetRng::for_component(0, "scenario/clients-until");
        source
            .next_batch(until, &mut rng)
            .into_iter()
            .map(|e| e.spec)
            .collect()
    }
}

/// Why [`ScenarioBuilder::build`] refused to assemble a scenario.
/// Validation happens up front so a bad configuration fails with a clear
/// error instead of deadlocking or panicking deep inside the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioError {
    /// No replicas were configured — there is nothing to route to.
    EmptyFleet,
    /// No traffic was configured, or the provided source was already
    /// exhausted — there is nothing to run.
    NoTraffic,
    /// The role assignment puts a prefill-only replica in a region with
    /// no decode-capable replica (colocated or decode-only): every
    /// handoff from that region would have nowhere to land.
    NoDecodeCapacity,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyFleet => {
                write!(f, "scenario has no replicas: set ScenarioBuilder::replicas")
            }
            ScenarioError::NoTraffic => write!(
                f,
                "scenario has no traffic: set ScenarioBuilder::clients, ::workload, \
                 or ::traffic_source with a non-exhausted source"
            ),
            ScenarioError::NoDecodeCapacity => write!(
                f,
                "scenario has a region with prefill-only replicas and no decode-capable \
                 replica: add a Colocated or DecodeOnly peer there, or adjust \
                 ScenarioBuilder::roles"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Fluent construction of a [`Scenario`] — the open counterpart of the
/// [`SystemKind`] presets. Custom systems (own deployment shape, own
/// [`PolicyFactory`], own [`TrafficSource`]) plug in here without
/// touching the fabric.
///
/// ```
/// use skywalker::fabric::{Deployment, Scenario};
/// use skywalker::scenarios::{balanced_fleet, Workload};
/// use skywalker::core::{PolicyKind, PushMode, RoutingConstraint};
///
/// let scenario = Scenario::builder()
///     .deployment(Deployment::PerRegion {
///         policy: PolicyKind::CacheAware,
///         push: PushMode::Pending,
///         forward: true,
///         tau: 4,
///         constraint: RoutingConstraint::Unrestricted,
///     })
///     .replicas(balanced_fleet())
///     .workload(Workload::Tot, 0.02, 7)
///     .constraint(RoutingConstraint::ContinentLocal)
///     .label("custom-tot")
///     .build()
///     .expect("fleet and workload are both set");
/// assert_eq!(scenario.label, "custom-tot");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    label: Option<String>,
    system: Option<SystemKind>,
    deployment: Option<Deployment>,
    policy_factory: Option<Arc<dyn PolicyFactory>>,
    replicas: Vec<ReplicaPlacement>,
    roles: Vec<ReplicaRole>,
    traffic: Option<Box<dyn TrafficSource>>,
    faults: Vec<FaultEvent>,
    fleet_plan: Option<Box<dyn FleetPlan>>,
    constraint: Option<RoutingConstraint>,
    engine: Option<EngineSpec>,
}

impl ScenarioBuilder {
    /// Starts from a preset: adopts the system's deployment shape and
    /// label (both still overridable by later calls).
    pub fn system(mut self, system: SystemKind) -> Self {
        self.system = Some(system);
        self
    }

    /// Sets the display label (defaults to the preset's label, then the
    /// policy factory's, then `"custom"`).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the deployment shape explicitly.
    pub fn deployment(mut self, deployment: Deployment) -> Self {
        self.deployment = Some(deployment);
        self
    }

    /// Installs a custom policy factory: every balancer's local and
    /// remote policies come from it instead of the deployment's built-in
    /// [`PolicyKind`].
    pub fn policy_factory(mut self, factory: impl PolicyFactory + 'static) -> Self {
        self.policy_factory = Some(Arc::new(factory));
        self
    }

    /// As [`ScenarioBuilder::policy_factory`], for an already-shared
    /// factory.
    pub fn policy_factory_arc(mut self, factory: Arc<dyn PolicyFactory>) -> Self {
        self.policy_factory = Some(factory);
        self
    }

    /// Sets the replica fleet.
    pub fn replicas(mut self, replicas: Vec<ReplicaPlacement>) -> Self {
        self.replicas = replicas;
        self
    }

    /// Assigns serving roles to the fleet, indexed like
    /// [`ScenarioBuilder::replicas`]; missing entries default to
    /// [`ReplicaRole::Colocated`]. [`ScenarioBuilder::build`] rejects
    /// assignments that leave a region's prefill-only replicas with no
    /// decode-capable target ([`ScenarioError::NoDecodeCapacity`]).
    pub fn roles(mut self, roles: Vec<ReplicaRole>) -> Self {
        self.roles = roles;
        self
    }

    /// Sets the closed-loop client population directly, adapted through
    /// a [`ClientListSource`] (every client arrives at `t = 0`, in
    /// vector order). See also `ScenarioBuilder::workload` (defined
    /// alongside the workload generators) for the paper's populations by
    /// name, and [`ScenarioBuilder::traffic_source`] for streaming
    /// arrivals.
    pub fn clients(self, clients: Vec<ClientSpec>) -> Self {
        self.traffic_source(Box::new(ClientListSource::new(clients)))
    }

    /// Installs a streaming [`TrafficSource`]: the fabric pulls client
    /// arrivals from it as simulated time advances instead of ingesting
    /// a pre-materialized population. Any external implementation plugs
    /// in here — the workload counterpart of
    /// [`ScenarioBuilder::policy_factory`].
    pub fn traffic_source(mut self, source: Box<dyn TrafficSource>) -> Self {
        self.traffic = Some(source);
        self
    }

    /// Replaces the fault schedule. Faults run as a [`ScheduledPlan`]
    /// of balancer flaps, merged with any [`ScenarioBuilder::fleet_plan`].
    pub fn faults(mut self, faults: Vec<FaultEvent>) -> Self {
        self.faults = faults;
        self
    }

    /// Appends one fault injection.
    pub fn fault(mut self, fault: FaultEvent) -> Self {
        self.faults.push(fault);
        self
    }

    /// Installs a fleet control plane: the fabric polls the plan as
    /// simulated time advances and applies its joins, drains, crashes,
    /// and balancer flaps mid-run. Any external [`FleetPlan`]
    /// implementation plugs in here — the fleet counterpart of
    /// [`ScenarioBuilder::policy_factory`] and
    /// [`ScenarioBuilder::traffic_source`].
    pub fn fleet_plan(mut self, plan: Box<dyn FleetPlan>) -> Self {
        self.fleet_plan = Some(plan);
        self
    }

    /// Applies a regulatory routing constraint to the deployment. Only
    /// meaningful for per-region shapes (a centralized balancer never
    /// forwards, so there is nothing to constrain).
    pub fn constraint(mut self, constraint: RoutingConstraint) -> Self {
        self.constraint = Some(constraint);
        self
    }

    /// Installs a serving engine: every replica (initial fleet and
    /// mid-run joins alike) runs a clone of this batch policy + KV
    /// evictor pair. The engine counterpart of
    /// [`ScenarioBuilder::policy_factory`],
    /// [`ScenarioBuilder::traffic_source`], and
    /// [`ScenarioBuilder::fleet_plan`] — any external [`BatchPolicy`] or
    /// [`KvEvictor`] implementation plugs in here.
    pub fn engine(mut self, engine: EngineSpec) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Replaces only the batch policy of the engine (keeping the
    /// current — or default — evictor).
    pub fn batch_policy(mut self, batch: Box<dyn BatchPolicy>) -> Self {
        self.engine.get_or_insert_with(EngineSpec::default).batch = batch;
        self
    }

    /// Replaces only the KV evictor of the engine (keeping the current
    /// — or default — batch policy).
    pub fn kv_evictor(mut self, evictor: Box<dyn KvEvictor>) -> Self {
        self.engine.get_or_insert_with(EngineSpec::default).evictor = evictor;
        self
    }

    /// Assembles and validates the scenario. Defaults: SkyWalker's
    /// deployment shape if none was set, no faults, built-in policies.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::EmptyFleet`] without replicas;
    /// [`ScenarioError::NoTraffic`] without a client population or with
    /// an already-exhausted traffic source.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        if self.replicas.is_empty() {
            return Err(ScenarioError::EmptyFleet);
        }
        let traffic = self.traffic.ok_or(ScenarioError::NoTraffic)?;
        if traffic.is_exhausted() {
            return Err(ScenarioError::NoTraffic);
        }
        let role_of = |roles: &[ReplicaRole], i: usize| roles.get(i).copied().unwrap_or_default();
        for (i, p) in self.replicas.iter().enumerate() {
            if role_of(&self.roles, i) != ReplicaRole::PrefillOnly {
                continue;
            }
            let has_decode = self
                .replicas
                .iter()
                .enumerate()
                .any(|(j, q)| q.region == p.region && role_of(&self.roles, j).decodes());
            if !has_decode {
                return Err(ScenarioError::NoDecodeCapacity);
            }
        }
        let mut deployment = self
            .deployment
            .or_else(|| self.system.map(|s| s.deployment()))
            .unwrap_or_else(|| SystemKind::SkyWalker.deployment());
        if let Some(c) = self.constraint {
            if let Deployment::PerRegion { constraint, .. } = &mut deployment {
                *constraint = c;
            }
        }
        let label = self
            .label
            .or_else(|| self.system.map(|s| s.label().to_string()))
            .or_else(|| self.policy_factory.as_ref().map(|f| f.label()))
            .unwrap_or_else(|| "custom".to_string());
        Ok(Scenario {
            label,
            system: self.system,
            deployment,
            policy_factory: self.policy_factory,
            replicas: self.replicas,
            roles: self.roles,
            traffic,
            faults: self.faults,
            fleet_plan: self.fleet_plan,
            engine: self.engine,
        })
    }
}

/// Fabric-wide timing knobs.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Root seed for all randomness.
    pub seed: u64,
    /// Wide-area latency model.
    pub net: LatencyModel,
    /// Selective-pushing probe interval (the paper uses 100 ms, §4.1).
    pub probe_interval: SimDuration,
    /// LB → controller heartbeat interval.
    pub heartbeat_interval: SimDuration,
    /// Controller failure-detection timeout.
    pub controller_timeout: SimDuration,
    /// Client retry delay after losing a request to a dead balancer.
    pub retry_delay: SimDuration,
    /// How far ahead the fabric polls the scenario's [`TrafficSource`]
    /// for upcoming client arrivals. Arrivals keep their exact instants
    /// regardless — this only batches the pull; smaller is more polls,
    /// larger is bigger batches. Clamped to at least one millisecond so
    /// the poll loop always advances virtual time at a sane rate.
    pub traffic_poll_interval: SimDuration,
    /// How often the fabric polls the scenario's [`FleetPlan`] with a
    /// fresh [`FleetObservation`]. Scheduled commands keep their exact
    /// instants regardless (the poll looks one interval ahead); this
    /// sets the control plane's reaction latency for *reactive* plans
    /// (autoscalers). Clamped to at least one millisecond.
    pub fleet_poll_interval: SimDuration,
    /// Hard stop; the run ends even if clients are unfinished.
    pub deadline: SimTime,
    /// Memory bound of the balancer routing tries, in tokens.
    pub trie_max_tokens: usize,
    /// Hit-ratio threshold of the cache-aware policy (§5.1: 0.5).
    pub affinity_threshold: f64,
    /// Load-gap override of the cache-aware policy: beyond this many
    /// outstanding requests between the most and least loaded candidate,
    /// affinity yields to shortest-queue routing (the SGLang router's
    /// default is 32).
    pub balance_abs_threshold: u32,
    /// Span tracing for bottleneck attribution. `None` (the default)
    /// records nothing; `Some` attaches a [`TraceRecorder`] and the run
    /// returns a [`TraceSummary`]. Tracing is observation-only — it
    /// never reads clocks, draws randomness, or changes scheduling, so
    /// outcomes are byte-identical either way (pinned by the
    /// golden-digest gate).
    pub trace: Option<TraceConfig>,
    /// Streaming metrics sampling. `None` (the default) records nothing;
    /// `Some` attaches a labeled [`MetricsRegistry`] fed on a sim-time
    /// cadence and the run returns a [`TelemetrySummary`]. Like tracing,
    /// telemetry is observation-only — enabling it at any cadence leaves
    /// run outcomes byte-identical (pinned by the golden-digest gate).
    pub telemetry: Option<TelemetryConfig>,
}

impl FabricConfig {
    /// This config with span tracing enabled at the default capacity.
    pub fn traced(mut self) -> Self {
        self.trace = Some(TraceConfig::default());
        self
    }

    /// This config with telemetry sampling enabled every `interval` of
    /// sim time (default ring capacity).
    pub fn telemetry(mut self, interval: SimDuration) -> Self {
        self.telemetry = Some(TelemetryConfig::every(interval));
        self
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            seed: 0xD1CE,
            net: LatencyModel::default_wan(),
            probe_interval: SimDuration::from_millis(100),
            heartbeat_interval: SimDuration::from_millis(500),
            controller_timeout: SimDuration::from_secs(2),
            retry_delay: SimDuration::from_secs(1),
            traffic_poll_interval: SimDuration::from_millis(500),
            fleet_poll_interval: SimDuration::from_millis(500),
            deadline: SimTime::from_secs(4 * 3600),
            trie_max_tokens: 1 << 22,
            affinity_threshold: 0.5,
            balance_abs_threshold: 32,
            trace: None,
            telemetry: None,
        }
    }
}

/// Results of one scenario run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Display label of the scenario that ran.
    pub label: String,
    /// The preset the scenario was derived from, if any.
    pub system: Option<SystemKind>,
    /// Client-observed metrics (throughput, TTFT, E2E, hit rate).
    pub report: RunReport,
    /// Virtual time when the run ended.
    pub end_time: SimTime,
    /// Aggregated per-replica engine statistics.
    pub replica_stats: Vec<ReplicaStats>,
    /// Prefix-cache hit rate measured at the replicas.
    pub replica_hit_rate: f64,
    /// The serving engine's display label (e.g. `"fcfs+lru"`).
    pub engine_label: String,
    /// Running decodes preempted by batch policies, fleet-wide.
    pub preempted: u64,
    /// Block-rounded KV tokens reclaimed by cache eviction, fleet-wide.
    pub evicted_tokens: u64,
    /// Block-rounded KV tokens demoted GPU→host by tiered caches,
    /// fleet-wide (zero without a [`TieredEvictor`](crate::TieredEvictor)).
    pub demoted_tokens: u64,
    /// Block-rounded KV tokens promoted host→GPU on cache hits,
    /// fleet-wide (zero without a [`TieredEvictor`](crate::TieredEvictor)).
    pub promoted_tokens: u64,
    /// Disaggregated prefill→decode KV handoffs (zero without
    /// [`ReplicaRole::PrefillOnly`] replicas).
    pub transfers: TransferSummary,
    /// Iterations with chunked prefill active, fleet-wide.
    pub chunked_steps: u64,
    /// Requests forwarded across regions.
    pub forwarded: u64,
    /// Max/min ratio of per-replica dispatch counts (load imbalance).
    pub dispatch_imbalance: f64,
    /// Max/min ratio of per-replica *peak outstanding* requests — the
    /// paper's "variance in outstanding request counts".
    pub outstanding_imbalance: f64,
    /// Peak outstanding requests observed per replica (probe-sampled).
    pub peak_outstanding: Vec<u32>,
    /// Largest balancer-side queue observed across all balancers.
    pub peak_lb_queue: usize,
    /// High-water mark of the simulation engine's pending-event count —
    /// the event-queue depth capacity planning keys off when scaling
    /// client populations.
    pub peak_events: usize,
    /// Max/min ratio of per-replica peak KV utilization (Fig. 4b).
    pub kv_peak_gap: f64,
    /// Per-replica KV-utilization traces.
    pub kv_series: Vec<TimeSeries>,
    /// Fleet elasticity: per-region fleet-size traces and churn
    /// counters.
    pub fleet: FleetSummary,
    /// The recorded span trace, when [`FabricConfig::trace`] was set.
    /// Feed it to `skywalker_trace::Attribution` for the per-request
    /// bottleneck breakdown.
    pub trace: Option<TraceSummary>,
    /// The streaming-metrics summary, when [`FabricConfig::telemetry`]
    /// was set: the final registry snapshot plus the per-tick dashboard
    /// series.
    pub telemetry: Option<TelemetrySummary>,
}

impl RunSummary {
    /// Mean requests-per-second completed.
    pub fn request_rate(&self) -> f64 {
        let secs = self.end_time.as_secs_f64();
        if secs > 0.0 {
            self.report.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// What the disaggregated KV-transfer plane did over one run: handoff
/// counts and token volumes across the prefill→decode boundary. A run
/// without prefill-only replicas shows all zeros. Conservation law:
/// `started == landed + aborted + in_transfer()` at every instant, and
/// a drained run ends with `in_transfer() == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferSummary {
    /// Handoffs shipped by prefill replicas.
    pub started: u64,
    /// Handoffs that landed at a decode replica.
    pub landed: u64,
    /// Handoffs abandoned because every decode target died in flight
    /// (the request was rerouted or failed, never stranded).
    pub aborted: u64,
    /// KV tokens shipped (prompt + first token, per handoff).
    pub tokens_sent: u64,
    /// KV tokens that landed.
    pub tokens_landed: u64,
    /// KV tokens abandoned in flight.
    pub tokens_aborted: u64,
}

impl TransferSummary {
    /// Handoffs still on the wire when the run ended (shipped, neither
    /// landed nor aborted) — nonzero only for deadline-truncated runs.
    pub fn in_transfer(&self) -> u64 {
        self.started - self.landed - self.aborted
    }

    /// KV tokens still on the wire when the run ended.
    pub fn tokens_in_transfer(&self) -> u64 {
        self.tokens_sent - self.tokens_landed - self.tokens_aborted
    }
}

/// What the fleet did over one run: per-region serving-replica traces
/// plus scale/failure counters. A static fleet shows flat traces and
/// zero counters.
#[derive(Debug, Clone, Default)]
pub struct FleetSummary {
    /// Serving (live, non-draining) replica count over time, one series
    /// per region that ever hosted a replica. Each series has a point
    /// at `t = 0` and at the run end, so time-weighted means are well
    /// defined.
    pub sizes: Vec<(Region, TimeSeries)>,
    /// Replicas that joined mid-run.
    pub joins: u64,
    /// Replicas drained (gracefully decommissioned).
    pub drains: u64,
    /// Replicas crashed.
    pub crashes: u64,
    /// Serving replicas at the end of the run.
    pub final_replicas: u32,
}

impl FleetSummary {
    /// The fleet-size trace of one region.
    pub fn series(&self, region: Region) -> Option<&TimeSeries> {
        self.sizes
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, s)| s)
    }

    /// Time-weighted mean serving-replica count across all regions —
    /// the "replica-seconds per second" a static fleet would need to
    /// match this run's capacity (the equal-cost comparison).
    pub fn mean_total(&self) -> f64 {
        self.sizes.iter().map(|(_, s)| s.time_weighted_mean()).sum()
    }

    /// Peak total serving-replica count observed at any single record
    /// point, per region, summed. (Regions peak at different times, so
    /// this upper-bounds the instantaneous total.)
    pub fn peak_total(&self) -> f64 {
        self.sizes.iter().map(|(_, s)| s.peak()).sum()
    }

    /// True if the fleet ever changed size.
    pub fn is_elastic(&self) -> bool {
        self.joins + self.drains + self.crashes > 0
    }
}

// ---------------------------------------------------------------------------
// The simulation world
// ---------------------------------------------------------------------------

enum Ev {
    /// Poll the traffic source for arrivals up to one poll interval
    /// ahead; reschedules itself while the source has more to give.
    TrafficPoll,
    /// A client emitted by the traffic source comes online.
    ClientArrive {
        spec: ClientSpec,
    },
    IssueStage {
        client: usize,
    },
    Retry {
        client: usize,
        req: Request,
    },
    LbReceive {
        lb: u32,
        req: Request,
        hops: u8,
    },
    LbDispatch {
        lb: u32,
    },
    ReplicaReceive {
        replica: u32,
        req: Request,
    },
    ReplicaKick {
        replica: u32,
    },
    IterationDone {
        replica: u32,
        first_tokens: Vec<RequestId>,
        completions: Vec<Completion>,
    },
    /// A disaggregated KV handoff lands at its decode replica: the
    /// modeled interconnect delay has elapsed since the prefill side
    /// shipped it. `req` is the decode leg (prompt + first token,
    /// remaining output budget, `output_offset = 1`).
    KvTransfer {
        to: u32,
        req: Request,
    },
    DeliverFirstToken {
        req: RequestId,
    },
    DeliverCompletion {
        client: usize,
        completion: Completion,
    },
    ProbeTick,
    /// Sample the authoritative fabric state into the metrics plane;
    /// reschedules itself every telemetry interval. Read-only against
    /// the simulation: it writes the registry and ring series, never the
    /// scheduler state, RNG streams, or any component.
    TelemetryTick,
    PeerStatus {
        to: u32,
        from: u32,
        avail: u32,
        qlen: u32,
    },
    HeartbeatTick,
    ControllerTick,
    /// Poll the scenario's [`FleetPlan`] with a fresh observation;
    /// reschedules itself while the plan has more to give.
    FleetPoll,
    /// Apply one fleet change at its exact instant.
    FleetApply {
        event: FleetEvent,
    },
}

struct ClientState {
    spec: ClientSpec,
    program_idx: usize,
    stage_idx: usize,
    inflight: u32,
    finished: bool,
}

/// Which leg of a disaggregated request is in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DisaggStage {
    /// Running the prompt phase on a prefill-only replica.
    Prefill,
    /// Shipped (or shipping) to a decode replica.
    Decode,
}

/// Fabric-side bookkeeping for one disaggregated request, alive from
/// the prefill-replica intercept until the decode leg's completion is
/// delivered (or the request terminally fails).
#[derive(Debug, Clone)]
struct DisaggMeta {
    /// The request exactly as the client issued it; failure paths
    /// restore it so retries re-enter the pipeline unmodified.
    orig: Request,
    /// Current leg.
    stage: DisaggStage,
    /// Prompt tokens the prefill leg served from its prefix cache —
    /// the cache credit the client's completion reports.
    cached_at_prefill: u32,
}

/// Lifecycle of a deployed replica, as the fabric tracks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReplicaHealth {
    /// Serving normally.
    Active,
    /// No new dispatch; finishing in-flight work.
    Draining,
    /// Drained to idle; permanently out of service.
    Retired,
    /// Killed; its in-flight work was failed/rerouted.
    Crashed,
}

/// The fabric's streaming metrics plane: a labeled registry fed at event
/// sites (TTFT sketches) and on the telemetry tick (gauges, cumulative
/// counters), plus ring-buffered dashboard series sampled every tick.
struct TelemetryPlane {
    cfg: TelemetryConfig,
    registry: MetricsRegistry,
    /// Total live-balancer queue depth per tick.
    queue_depth: RingSeries,
    /// Sketch-P90 TTFT (seconds) per tick.
    ttft_p90: RingSeries,
    /// Fleet-wide replica prefix-cache hit ratio per tick.
    hit_ratio: RingSeries,
    /// Serving (active) replica count per tick.
    serving_replicas: RingSeries,
    /// Mean KV utilization across serving replicas per tick.
    kv_utilization: RingSeries,
    /// Sampling passes taken (every tick plus one final flush).
    ticks: u64,
}

impl TelemetryPlane {
    fn new(cfg: TelemetryConfig) -> Self {
        let cap = cfg.ring_capacity;
        TelemetryPlane {
            cfg,
            registry: MetricsRegistry::new(),
            queue_depth: RingSeries::new("queue_depth", cap),
            ttft_p90: RingSeries::new("ttft_p90_seconds", cap),
            hit_ratio: RingSeries::new("hit_ratio", cap),
            serving_replicas: RingSeries::new("serving_replicas", cap),
            kv_utilization: RingSeries::new("kv_utilization", cap),
            ticks: 0,
        }
    }

    fn into_summary(self) -> TelemetrySummary {
        TelemetrySummary {
            interval: self.cfg.interval,
            ticks: self.ticks,
            snapshot: self.registry.snapshot(),
            series: vec![
                self.hit_ratio,
                self.kv_utilization,
                self.queue_depth,
                self.serving_replicas,
                self.ttft_p90,
            ],
        }
    }
}

struct Fabric {
    cfg: FabricConfig,
    rng: DetRng,
    lbs: Vec<RegionalBalancer>,
    lb_alive: Vec<bool>,
    replicas: Vec<Replica>,
    replica_region: Vec<Region>,
    replica_stepping: Vec<bool>,
    /// Serving role per replica (indexed like `replicas`; mid-run joins
    /// are always [`ReplicaRole::Colocated`]).
    replica_role: Vec<ReplicaRole>,
    /// In-flight disaggregated requests by id (deterministic map: the
    /// lint budget treats `BTreeMap` iteration as ordered).
    disagg: BTreeMap<u64, DisaggMeta>,
    /// KV-handoff accounting across the prefill→decode boundary.
    transfers: TransferSummary,
    clients: Vec<ClientState>,
    dns: DnsResolver,
    controller: Controller,
    tracker: RequestTracker,
    /// The scenario's traffic stream, pulled as sim time advances.
    source: Box<dyn TrafficSource>,
    /// Cached `source.is_exhausted()` — part of the stop condition.
    source_exhausted: bool,
    /// Arrivals pulled from the source but not yet come online.
    pending_arrivals: usize,
    /// Randomness stream handed to the source (separate from the
    /// network stream, so sources cannot perturb latency sampling).
    traffic_rng: DetRng,
    /// RequestId → issuing client.
    req_client: HashMap<u64, usize>, // det-allow(D02): lookup-only — keyed by request id, never iterated
    /// RequestId → balancer that dispatched it locally.
    req_lb: HashMap<u64, u32>, // det-allow(D02): lookup-only — keyed by request id, never iterated
    kv_series: Vec<TimeSeries>,
    peak_outstanding: Vec<u32>,
    active_clients: usize,
    forward_enabled: bool,
    /// The scenario's fleet control plane (faults merged in), polled as
    /// sim time advances.
    plan: Option<Box<dyn FleetPlan>>,
    /// Randomness stream handed to the plan (separate from the network
    /// stream, so plans cannot perturb latency sampling).
    fleet_rng: DetRng,
    /// The serving engine cloned into every replica.
    engine: EngineSpec,
    /// Lifecycle of each deployed replica (indexed like `replicas`).
    replica_health: Vec<ReplicaHealth>,
    /// Per-region serving-replica traces.
    fleet_sizes: BTreeMap<Region, TimeSeries>,
    joins: u64,
    drains: u64,
    crashes: u64,
    /// Requests already given their one post-crash reroute.
    rerouted_once: HashSet<u64>, // det-allow(D02): membership-only — insert/contains, never iterated
    /// Span recorder, attached when [`FabricConfig::trace`] is set.
    tracer: Option<TraceRecorder>,
    /// Streaming metrics plane, attached when [`FabricConfig::telemetry`]
    /// is set.
    telemetry: Option<TelemetryPlane>,
    /// Per-replica cumulative evicted-token counts at the last trace
    /// point, for emitting per-iteration eviction deltas (indexed like
    /// `replicas`; only consulted while tracing).
    last_evicted: Vec<u64>,
    /// Scratch for [`Ev::ProbeTick`]'s per-balancer replica walk, reused
    /// across ticks instead of allocating a fresh id list per balancer.
    probe_ids: Vec<ReplicaId>,
    /// Scratch for the peer-status fan-out assembled on every probe tick.
    probe_statuses: Vec<(u32, Region, u32, u32)>,
    /// Reused [`FleetObservation`] handed to the fleet plan each poll;
    /// its vecs keep their capacity between polls.
    obs_scratch: FleetObservation,
    /// Scratch for [`Fabric::record_fleet`]'s per-region counts, kept
    /// sorted by region (the same order the `BTreeMap` build iterated).
    fleet_counts: Vec<(Region, f64)>,
}

impl Fabric {
    fn lb_endpoint(i: u32, region: Region) -> Endpoint {
        Endpoint { region, lb_id: i }
    }

    /// Records one span event if tracing is on. Observation-only by
    /// construction: the recorder is fed, nothing is read back.
    #[inline]
    fn trace(&mut self, at: SimTime, kind: TraceEventKind) {
        if let Some(rec) = self.tracer.as_mut() {
            rec.record(at, kind);
        }
    }

    /// Samples the authoritative fabric state into the metrics plane.
    /// No-op when telemetry is off. Observation-only by construction:
    /// reads balancer/replica state, writes only the registry and ring
    /// series — never the scheduler, the RNG streams, or any component.
    fn telemetry_sample(&mut self, now: SimTime) {
        let Some(mut plane) = self.telemetry.take() else {
            return;
        };
        plane.ticks += 1;
        let reg = &mut plane.registry;

        // Balancer plane: live queue depths plus the cumulative routing
        // counters the balancers already track exactly.
        let mut total_queue = 0u64;
        for (li, lb) in self.lbs.iter().enumerate() {
            if !self.lb_alive[li] {
                continue;
            }
            let stats = lb.stats();
            let labels = [("region", lb.region().name())];
            reg.set_gauge("skywalker_lb_queue_depth", &labels, lb.queue_len() as f64);
            reg.counter_at_least("skywalker_lb_received_total", &labels, stats.received);
            reg.counter_at_least(
                "skywalker_lb_dispatched_local_total",
                &labels,
                stats.dispatched_local,
            );
            reg.counter_at_least("skywalker_lb_forwarded_total", &labels, stats.forwarded);
            total_queue += lb.queue_len() as u64;
        }

        // Replica plane: serving count, KV pressure, cache effectiveness.
        let mut serving = 0u64;
        let mut kv_sum = 0.0;
        let mut prompt = 0u64;
        let mut cached = 0u64;
        let mut completed = 0u64;
        for (ri, r) in self.replicas.iter().enumerate() {
            if self.replica_health[ri] == ReplicaHealth::Active {
                serving += 1;
                kv_sum += r.kv_utilization();
            }
            let stats = r.stats();
            prompt += stats.prompt_tokens;
            cached += stats.cached_prompt_tokens;
            completed += stats.completed;
        }
        let kv_mean = if serving > 0 {
            kv_sum / serving as f64
        } else {
            0.0
        };
        let hit = if prompt > 0 {
            cached as f64 / prompt as f64
        } else {
            0.0
        };
        reg.set_gauge("skywalker_serving_replicas", &[], serving as f64);
        reg.set_gauge("skywalker_kv_utilization_mean", &[], kv_mean);
        reg.set_gauge("skywalker_replica_hit_ratio", &[], hit);
        reg.counter_at_least("skywalker_replica_completed_total", &[], completed);

        // Disaggregation plane: cumulative handoff counts and volume
        // (flat zeros — and no extra series — on colocated fleets).
        if self.transfers.started > 0 {
            reg.counter_at_least("skywalker_kv_transfers_total", &[], self.transfers.started);
            reg.counter_at_least(
                "skywalker_kv_transfer_tokens_total",
                &[],
                self.transfers.tokens_sent,
            );
        }

        let ttft_p90 = reg
            .sketch("skywalker_ttft_seconds", &[])
            .map(|s| s.quantile(0.90))
            .unwrap_or(0.0);

        plane.queue_depth.record(now, total_queue as f64);
        plane.ttft_p90.record(now, ttft_p90);
        plane.hit_ratio.record(now, hit);
        plane.serving_replicas.record(now, serving as f64);
        plane.kv_utilization.record(now, kv_mean);

        self.telemetry = Some(plane);
    }

    fn issue_request(
        &mut self,
        client_idx: usize,
        req: Request,
        sched: &mut Scheduler<Ev>,
        now: SimTime,
        record_arrival: bool,
    ) {
        let region = self.clients[client_idx].spec.region;
        if record_arrival {
            self.tracker.arrival(req.id.0, now, req.prompt.len() as u64);
            self.req_client.insert(req.id.0, client_idx);
        }
        self.trace(now, TraceEventKind::Issued { req: req.id.0 });
        let Some(ep) = self.dns.resolve(region) else {
            // Total outage: retry later.
            self.trace(now, TraceEventKind::RetryWait { req: req.id.0 });
            sched.after(
                self.cfg.retry_delay,
                Ev::Retry {
                    client: client_idx,
                    req,
                },
            );
            return;
        };
        let delay = self
            .cfg
            .net
            .sample_one_way(region, ep.region, &mut self.rng);
        sched.after(
            delay,
            Ev::LbReceive {
                lb: ep.lb_id,
                req,
                hops: 0,
            },
        );
    }

    fn route_decisions(
        &mut self,
        lb: u32,
        decisions: Vec<Decision>,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let lb_region = self.lbs[lb as usize].region();
        for d in decisions {
            match d {
                Decision::Local { req, replica } => {
                    self.req_lb.insert(req.id.0, lb);
                    self.trace(
                        now,
                        TraceEventKind::Dispatched {
                            req: req.id.0,
                            lb,
                            replica: replica.0,
                        },
                    );
                    let delay = self.cfg.net.sample_one_way(
                        lb_region,
                        self.replica_region[replica.0 as usize],
                        &mut self.rng,
                    );
                    sched.after(
                        delay,
                        Ev::ReplicaReceive {
                            replica: replica.0,
                            req,
                        },
                    );
                }
                Decision::Forward { req, peer, hops } => {
                    self.trace(
                        now,
                        TraceEventKind::Forwarded {
                            req: req.id.0,
                            from: lb,
                        },
                    );
                    let delay = self.cfg.net.sample_one_way(
                        lb_region,
                        self.lbs[peer.0 as usize].region(),
                        &mut self.rng,
                    );
                    sched.after(
                        delay,
                        Ev::LbReceive {
                            lb: peer.0,
                            req,
                            hops,
                        },
                    );
                }
            }
        }
    }

    /// Marks one in-flight request of `client` finished and, if its stage
    /// drained, schedules the next stage (or retires the client).
    fn request_finished(&mut self, client_idx: usize, sched: &mut Scheduler<Ev>) {
        {
            let c = &mut self.clients[client_idx];
            c.inflight = c.inflight.saturating_sub(1);
            if c.finished || c.inflight > 0 {
                return;
            }
            // Advance to the next stage, skipping empty programs.
            if let Some(p) = c.spec.programs.get(c.program_idx) {
                c.stage_idx += 1;
                if c.stage_idx >= p.stages.len() {
                    c.program_idx += 1;
                    c.stage_idx = 0;
                }
            }
            while c
                .spec
                .programs
                .get(c.program_idx)
                .is_some_and(|p| p.stages.is_empty())
            {
                c.program_idx += 1;
            }
            if c.spec.programs.get(c.program_idx).is_none() {
                c.finished = true;
            }
        }
        if self.clients[client_idx].finished {
            self.active_clients -= 1;
            self.maybe_stop(sched);
        } else {
            sched.after(SimDuration::ZERO, Ev::IssueStage { client: client_idx });
        }
    }

    /// Ends the run once nothing can generate further work: the source
    /// has no more arrivals, none are in flight to admission, and every
    /// admitted client has finished.
    fn maybe_stop(&self, sched: &mut Scheduler<Ev>) {
        if self.source_exhausted && self.pending_arrivals == 0 && self.active_clients == 0 {
            sched.stop();
        }
    }

    fn apply_control_actions(
        &mut self,
        actions: Vec<ControlAction>,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        for action in actions {
            match action {
                ControlAction::LbFailed(id) => {
                    let region = self.lbs[id.0 as usize].region();
                    self.dns.mark_unhealthy(Self::lb_endpoint(id.0, region));
                    for (j, lb) in self.lbs.iter_mut().enumerate() {
                        if j as u32 != id.0 {
                            lb.set_peer_alive(id, false);
                        }
                    }
                    // Requests stuck in the dead balancer's queue are
                    // lost; their clients retry elsewhere.
                    let lost = self.lbs[id.0 as usize].drain_queue();
                    for req in lost {
                        if let Some(&client) = self.req_client.get(&req.id.0) {
                            self.trace(now, TraceEventKind::RetryWait { req: req.id.0 });
                            sched.after(self.cfg.retry_delay, Ev::Retry { client, req });
                        }
                    }
                }
                ControlAction::LbRecovered(id) => {
                    let region = self.lbs[id.0 as usize].region();
                    self.dns.mark_healthy(Self::lb_endpoint(id.0, region));
                    for (j, lb) in self.lbs.iter_mut().enumerate() {
                        if j as u32 != id.0 {
                            lb.set_peer_alive(id, true);
                        }
                    }
                }
                ControlAction::Reassign { replica, from, to } => {
                    self.lbs[from.0 as usize].remove_replica(replica);
                    // Preserve the replica's true region: a re-homed
                    // replica is remote to its adoptive balancer, and
                    // locality-aware policies should see that.
                    let region = self.replica_region[replica.0 as usize];
                    self.lbs[to.0 as usize].add_replica_in(replica, region);
                    sched.at(now, Ev::LbDispatch { lb: to.0 });
                }
            }
        }
    }

    /// Assembles the control-plane snapshot handed to the fleet plan into
    /// a caller-provided (reused) observation.
    fn observe_into(&self, now: SimTime, obs: &mut FleetObservation) {
        obs.now = now;
        obs.replicas.clear();
        obs.replicas
            .extend(self.replicas.iter().enumerate().filter_map(
                |(i, r)| match self.replica_health[i] {
                    ReplicaHealth::Active | ReplicaHealth::Draining => Some(ReplicaObservation {
                        id: ReplicaId(i as u32),
                        region: self.replica_region[i],
                        pending: r.pending_len() as u32,
                        running: r.running_len() as u32,
                        kv_utilization: r.kv_utilization(),
                        draining: self.replica_health[i] == ReplicaHealth::Draining,
                    }),
                    ReplicaHealth::Retired | ReplicaHealth::Crashed => None,
                },
            ));
        obs.balancers.clear();
        obs.balancers
            .extend(self.lbs.iter().enumerate().map(|(i, lb)| LbObservation {
                index: i as u32,
                region: lb.region(),
                queue: lb.queue_len() as u32,
                outstanding: lb.outstanding(),
                alive: self.lb_alive[i],
            }));
    }

    /// Appends the current per-region serving-replica counts to the
    /// fleet-size traces.
    fn record_fleet(&mut self, now: SimTime) {
        let mut counts = std::mem::take(&mut self.fleet_counts);
        counts.clear();
        // Seeded from the (region-sorted) trace map so regions that lost
        // every replica still record an explicit zero.
        counts.extend(self.fleet_sizes.keys().map(|r| (*r, 0.0)));
        for (i, &region) in self.replica_region.iter().enumerate() {
            if self.replica_health[i] == ReplicaHealth::Active {
                match counts.binary_search_by(|(r, _)| r.cmp(&region)) {
                    Ok(slot) => counts[slot].1 += 1.0,
                    Err(slot) => counts.insert(slot, (region, 1.0)),
                }
            }
        }
        for &(region, count) in &counts {
            self.fleet_sizes
                .entry(region)
                .or_insert_with(|| TimeSeries::new(format!("fleet/{region:?}")))
                .record(now, count);
        }
        self.fleet_counts = counts;
    }

    /// The balancer a joining replica in `region` attaches to: the
    /// balancer fronting that region if one exists, else the nearest by
    /// RTT (covers centralized deployments and joins into regions with
    /// no balancer of their own).
    fn home_lb_for(&self, region: Region) -> usize {
        self.lbs
            .iter()
            .position(|lb| lb.region() == region)
            .unwrap_or_else(|| {
                (0..self.lbs.len())
                    .min_by_key(|&i| (self.cfg.net.rtt(region, self.lbs[i].region()), i))
                    .expect("a scenario always deploys at least one balancer")
            })
    }

    /// Strips disagg bookkeeping off a failing or retrying request,
    /// returning the original client request so it re-enters the
    /// pipeline unmodified. A request with no disagg meta passes
    /// through untouched.
    fn restore_original(&mut self, req: Request) -> Request {
        match self.disagg.remove(&req.id.0) {
            Some(meta) => meta.orig,
            None => req,
        }
    }

    /// The decode replica a prefill handoff ships to: Active,
    /// decode-capable, preferring the prefill's own region, ranked by
    /// tier-weighted prefix residency (GPU-resident matches count
    /// double vs host-demoted ones — promoting costs a transfer), then
    /// the shortest queue, then the lowest id. Falls back to any region
    /// when the home region lost its decode capacity mid-run; `None`
    /// only when the whole fleet did.
    fn pick_decode_target(&self, region: Region, prompt: &[u32]) -> Option<usize> {
        let candidate = |i: usize| {
            self.replica_health[i] == ReplicaHealth::Active && self.replica_role[i].decodes()
        };
        let score = |i: usize| {
            let (gpu, host) = self.replicas[i].cache().matched_tokens_tiered(prompt);
            let load = self.replicas[i].pending_len() + self.replicas[i].running_len();
            (std::cmp::Reverse(gpu * 2 + host), load, i)
        };
        (0..self.replicas.len())
            .filter(|&i| candidate(i) && self.replica_region[i] == region)
            .min_by_key(|&i| score(i))
            .or_else(|| {
                (0..self.replicas.len())
                    .filter(|&i| candidate(i))
                    .min_by_key(|&i| score(i))
            })
    }

    /// Starts the prefill→decode handoff for a prefill-leg completion
    /// on `from`: builds the decode leg, picks its target, emits the
    /// [`TraceEventKind::KvTransfer`] span, and schedules the landing
    /// after the modeled interconnect delay.
    fn start_handoff(
        &mut self,
        from: u32,
        c: &Completion,
        now: SimTime,
        sched: &mut Scheduler<Ev>,
    ) {
        let id = c.id.0;
        let orig = {
            let meta = self
                .disagg
                .get_mut(&id)
                .expect("prefill stage implies meta");
            meta.stage = DisaggStage::Decode;
            meta.cached_at_prefill = c.cached_prompt_tokens;
            meta.orig.clone()
        };
        // The decode leg replays the prompt plus the first token the
        // prefill replica produced — exactly the KV state the transfer
        // ships — and `output_offset = 1` keeps its generated token
        // ids identical to the colocated stream.
        let mut prompt = orig.prompt.clone();
        prompt.push(output_token(id, 0));
        let leg2 = Request {
            id: orig.id,
            session_key: orig.session_key.clone(),
            prompt,
            target_output_tokens: orig.target_output_tokens - 1,
            output_offset: 1,
        };
        let tokens = leg2.prompt.len() as u64;
        let region = self.replica_region[from as usize];
        match self.pick_decode_target(region, &leg2.prompt) {
            Some(to) => {
                self.trace(
                    now,
                    TraceEventKind::KvTransfer {
                        req: id,
                        from,
                        to: to as u32,
                        tokens,
                    },
                );
                self.transfers.started += 1;
                self.transfers.tokens_sent += tokens;
                let delay = self.replicas[from as usize]
                    .profile()
                    .kv_transfer_time(tokens);
                sched.after(
                    delay,
                    Ev::KvTransfer {
                        to: to as u32,
                        req: leg2,
                    },
                );
            }
            None => {
                // Every decode target died since build-time validation:
                // treat the request like a crash casualty.
                let orig = self.restore_original(leg2);
                self.fail_or_reroute(orig, now, sched);
            }
        }
    }

    /// Gives a crash casualty its one reroute, or counts it failed.
    fn fail_or_reroute(&mut self, req: Request, now: SimTime, sched: &mut Scheduler<Ev>) {
        // A disagg leg retries (and is accounted) as the original
        // client request.
        let req = self.restore_original(req);
        let id = req.id.0;
        let client = self.req_client.get(&id).copied();
        if let Some(client) = client {
            if self.rerouted_once.insert(id) {
                sched.at(now, Ev::Retry { client, req });
                return;
            }
        }
        self.trace(now, TraceEventKind::Failed { req: id });
        self.tracker.failure(id);
        if let Some(client) = client {
            self.request_finished(client, sched);
        }
    }

    /// Applies one fleet change at its effective instant.
    fn apply_fleet_event(&mut self, event: FleetEvent, now: SimTime, sched: &mut Scheduler<Ev>) {
        match event {
            FleetEvent::LbDown { lb } => {
                let Some(alive) = self.lb_alive.get_mut(lb as usize) else {
                    return;
                };
                *alive = false;
                // A crashed balancer loses its queue immediately; the
                // controller notices the silence within its timeout.
                let lost = self.lbs[lb as usize].drain_queue();
                for req in lost {
                    if let Some(&client) = self.req_client.get(&req.id.0) {
                        self.trace(now, TraceEventKind::RetryWait { req: req.id.0 });
                        sched.after(self.cfg.retry_delay, Ev::Retry { client, req });
                    }
                }
            }
            FleetEvent::LbUp { lb } => {
                if let Some(alive) = self.lb_alive.get_mut(lb as usize) {
                    *alive = true;
                }
            }
            FleetEvent::ReplicaJoin { region, profile } => {
                let rid = ReplicaId(self.replicas.len() as u32);
                self.replicas.push(Replica::with_engine(
                    rid,
                    profile,
                    self.engine.batch.clone(),
                    self.engine.evictor.clone(),
                ));
                self.replica_region.push(region);
                self.replica_stepping.push(false);
                // Joins are always colocated: the fleet plan vocabulary
                // has no role axis (yet), and a colocated joiner is a
                // valid decode target either way.
                self.replica_role.push(ReplicaRole::Colocated);
                self.replica_health.push(ReplicaHealth::Active);
                self.kv_series
                    .push(TimeSeries::new(format!("replica-{}/kv", rid.0)));
                self.peak_outstanding.push(0);
                self.last_evicted.push(0);
                let home = self.home_lb_for(region);
                self.lbs[home].add_replica_in(rid, region);
                // Home is the regional balancer even if currently down:
                // the controller's next check re-homes the replica to a
                // survivor, and recovery hands it back.
                self.controller.register_replica(rid, LbId(home as u32));
                self.joins += 1;
                self.record_fleet(now);
                sched.at(now, Ev::LbDispatch { lb: home as u32 });
            }
            FleetEvent::ReplicaDrain { replica } => {
                let i = replica.0 as usize;
                if self
                    .replica_health
                    .get(i)
                    .is_none_or(|h| *h != ReplicaHealth::Active)
                {
                    return; // unknown, already draining, or dead: no-op
                }
                if let Some(holder) = self.controller.holder(replica) {
                    self.lbs[holder.0 as usize].remove_replica(replica);
                }
                self.controller.deregister_replica(replica);
                let idle = self.replicas[i].is_idle() && !self.replica_stepping[i];
                self.replica_health[i] = if idle {
                    ReplicaHealth::Retired
                } else {
                    ReplicaHealth::Draining
                };
                self.drains += 1;
                self.record_fleet(now);
            }
            FleetEvent::ReplicaCrash { replica } => {
                let i = replica.0 as usize;
                let Some(&health) = self.replica_health.get(i) else {
                    return;
                };
                if matches!(health, ReplicaHealth::Retired | ReplicaHealth::Crashed) {
                    return;
                }
                if let Some(holder) = self.controller.holder(replica) {
                    self.lbs[holder.0 as usize].remove_replica(replica);
                }
                self.controller.deregister_replica(replica);
                self.replica_health[i] = ReplicaHealth::Crashed;
                self.crashes += 1;
                self.record_fleet(now);
                let lost = self.replicas[i].fail_all();
                for req in lost {
                    self.fail_or_reroute(req, now, sched);
                }
            }
        }
    }
}

impl World for Fabric {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
        match ev {
            Ev::TrafficPoll => {
                // Pull one poll interval ahead so every arrival can be
                // scheduled at its exact instant instead of being
                // quantized to poll boundaries.
                let horizon = now + self.cfg.traffic_poll_interval;
                let events = self.source.next_batch(horizon, &mut self.traffic_rng);
                for ClientEvent { at, spec } in events {
                    self.pending_arrivals += 1;
                    sched.at(at, Ev::ClientArrive { spec });
                }
                self.source_exhausted = self.source.is_exhausted();
                if self.source_exhausted {
                    self.maybe_stop(sched);
                } else {
                    sched.after(self.cfg.traffic_poll_interval, Ev::TrafficPoll);
                }
            }
            Ev::ClientArrive { spec } => {
                self.pending_arrivals -= 1;
                let idx = self.clients.len();
                self.clients.push(ClientState {
                    spec,
                    program_idx: 0,
                    stage_idx: 0,
                    inflight: 0,
                    finished: false,
                });
                self.active_clients += 1;
                sched.at(now, Ev::IssueStage { client: idx });
            }
            Ev::IssueStage { client } => {
                let reqs = {
                    let c = &self.clients[client];
                    c.spec
                        .programs
                        .get(c.program_idx)
                        .and_then(|p| p.stages.get(c.stage_idx))
                        .cloned()
                };
                let Some(reqs) = reqs else {
                    // Empty client (no programs at all).
                    if !self.clients[client].finished {
                        self.clients[client].finished = true;
                        self.active_clients -= 1;
                        self.maybe_stop(sched);
                    }
                    return;
                };
                self.clients[client].inflight = reqs.len() as u32;
                for req in reqs {
                    self.issue_request(client, req, sched, now, true);
                }
            }
            Ev::Retry { client, req } => {
                self.tracker.retry(req.id.0);
                self.issue_request(client, req, sched, now, false);
            }
            Ev::LbReceive { lb, req, hops } => {
                if !self.lb_alive[lb as usize] {
                    // Connection refused: the client retries via DNS.
                    if let Some(&client) = self.req_client.get(&req.id.0) {
                        self.trace(now, TraceEventKind::RetryWait { req: req.id.0 });
                        sched.after(self.cfg.retry_delay, Ev::Retry { client, req });
                    }
                    return;
                }
                // `hops` counts forwards already taken, so the chain
                // length through this balancer is one longer.
                self.tracker.record_hops(req.id.0, hops.saturating_add(1));
                self.trace(
                    now,
                    TraceEventKind::LbQueued {
                        req: req.id.0,
                        lb,
                        hops,
                    },
                );
                self.lbs[lb as usize].submit(req, hops);
                sched.at(now, Ev::LbDispatch { lb });
            }
            Ev::LbDispatch { lb } => {
                if !self.lb_alive[lb as usize] {
                    return;
                }
                let decisions = self.lbs[lb as usize].dispatch();
                self.route_decisions(lb, decisions, now, sched);
            }
            Ev::ReplicaReceive { replica, req } => {
                let i = replica as usize;
                match self.replica_health[i] {
                    ReplicaHealth::Crashed => {
                        // Landed on a corpse (dispatched before the
                        // crash): treat like the rest of its in-flight
                        // cohort.
                        self.fail_or_reroute(req, now, sched);
                        return;
                    }
                    ReplicaHealth::Retired => {
                        // Raced a drain completion in transit: the
                        // replica still owes this request service.
                        self.replica_health[i] = ReplicaHealth::Draining;
                    }
                    ReplicaHealth::Active | ReplicaHealth::Draining => {}
                }
                // A prefill-only replica runs the prompt phase and the
                // first token, then hands off: intercept fresh requests
                // into a one-token prefill leg. Single-token requests
                // finish at the first token anyway, so they run whole.
                let req = if self.replica_role[i] == ReplicaRole::PrefillOnly
                    && req.target_output_tokens > 1
                {
                    let mut leg1 = req.clone();
                    leg1.target_output_tokens = 1;
                    self.disagg.insert(
                        req.id.0,
                        DisaggMeta {
                            orig: req,
                            stage: DisaggStage::Prefill,
                            cached_at_prefill: 0,
                        },
                    );
                    leg1
                } else {
                    req
                };
                self.trace(
                    now,
                    TraceEventKind::ReplicaQueued {
                        req: req.id.0,
                        replica,
                    },
                );
                self.replicas[i].enqueue(req);
                sched.at(now, Ev::ReplicaKick { replica });
            }
            Ev::ReplicaKick { replica } => {
                let i = replica as usize;
                if self.replica_stepping[i] || self.replica_health[i] == ReplicaHealth::Crashed {
                    return;
                }
                loop {
                    if self.replicas[i].is_idle() {
                        return;
                    }
                    let out = self.replicas[i].step();
                    if self.tracer.is_some() {
                        for id in &out.admitted {
                            self.trace(now, TraceEventKind::Admitted { req: id.0, replica });
                        }
                        for id in &out.preempted {
                            self.trace(now, TraceEventKind::Preempted { req: id.0, replica });
                        }
                        let evicted = self.replicas[i].cache().evicted_tokens();
                        if evicted > self.last_evicted[i] {
                            let tokens = evicted - self.last_evicted[i];
                            self.last_evicted[i] = evicted;
                            self.trace(now, TraceEventKind::Evicted { replica, tokens });
                        }
                        if out.worked()
                            && out.admitted.is_empty()
                            && self.replicas[i].pending_len() > 0
                        {
                            // A whole iteration ran without room to admit
                            // the waiting head: pending requests are
                            // stalled on KV memory, not on compute.
                            self.trace(
                                now,
                                TraceEventKind::ReplicaStall {
                                    replica,
                                    until: now + out.duration,
                                },
                            );
                        }
                    }
                    if out.worked() {
                        self.replica_stepping[i] = true;
                        sched.after(
                            out.duration,
                            Ev::IterationDone {
                                replica,
                                first_tokens: out.first_tokens,
                                completions: out.completions,
                            },
                        );
                        return;
                    }
                    if out.progressed() {
                        // A zero-duration step that still changed state
                        // (a preemption emptied the batch): the
                        // requeued request is servable — step again
                        // rather than misread this as a stuck head.
                        continue;
                    }
                    // Head request can never fit: fail it and keep going.
                    let Some(dropped) = self.replicas[i].pop_pending_head() else {
                        return;
                    };
                    let dropped = self.restore_original(dropped);
                    self.trace(now, TraceEventKind::Failed { req: dropped.id.0 });
                    self.tracker.failure(dropped.id.0);
                    if let Some(&lb) = self.req_lb.get(&dropped.id.0) {
                        self.lbs[lb as usize].on_replica_complete(ReplicaId(replica));
                    }
                    if let Some(&client) = self.req_client.get(&dropped.id.0) {
                        self.request_finished(client, sched);
                    }
                }
            }
            Ev::IterationDone {
                replica,
                first_tokens,
                completions,
            } => {
                let i = replica as usize;
                self.replica_stepping[i] = false;
                // Outputs of an iteration that finished before a crash
                // landed still stream out (crash granularity is the
                // iteration boundary); the still-running remainder was
                // already failed by the crash itself.
                let crashed = self.replica_health[i] == ReplicaHealth::Crashed;
                let r_region = self.replica_region[i];
                for id in first_tokens {
                    self.trace(now, TraceEventKind::FirstToken { req: id.0, replica });
                    // The decode leg of a disaggregated request re-emits
                    // a first token when its (cache-warm) prefill pass
                    // finishes; the client already got theirs from the
                    // prefill replica.
                    if self
                        .disagg
                        .get(&id.0)
                        .is_some_and(|m| m.stage == DisaggStage::Decode)
                    {
                        continue;
                    }
                    if let Some(&client) = self.req_client.get(&id.0) {
                        let delay = self.cfg.net.sample_one_way(
                            r_region,
                            self.clients[client].spec.region,
                            &mut self.rng,
                        );
                        sched.after(delay, Ev::DeliverFirstToken { req: id });
                    }
                }
                for c in completions {
                    self.trace(
                        now,
                        TraceEventKind::ReplicaDone {
                            req: c.id.0,
                            replica,
                        },
                    );
                    let stage = self.disagg.get(&c.id.0).map(|m| m.stage);
                    if stage == Some(DisaggStage::Prefill) {
                        // Prefill leg done: credit the dispatching
                        // balancer (the decode leg is invisible to it)
                        // and ship the KV state instead of delivering.
                        if let Some(&lb) = self.req_lb.get(&c.id.0) {
                            self.lbs[lb as usize].on_replica_complete(ReplicaId(replica));
                            sched.at(now, Ev::LbDispatch { lb });
                        }
                        self.req_lb.remove(&c.id.0);
                        self.start_handoff(replica, &c, now, sched);
                        continue;
                    }
                    let completion = if stage == Some(DisaggStage::Decode) {
                        // Decode leg done: rewrite the completion to the
                        // client's view — the original prompt length,
                        // the prefill leg's cache credit, both legs'
                        // generated tokens. (No balancer owns this leg;
                        // `req_lb` was dropped at the handoff.)
                        let meta = self.disagg.remove(&c.id.0).expect("stage implies meta");
                        Completion {
                            id: c.id,
                            prompt_tokens: meta.orig.prompt_len(),
                            cached_prompt_tokens: meta.cached_at_prefill,
                            generated_tokens: c.generated_tokens + 1,
                        }
                    } else {
                        if let Some(&lb) = self.req_lb.get(&c.id.0) {
                            self.lbs[lb as usize].on_replica_complete(ReplicaId(replica));
                            sched.at(now, Ev::LbDispatch { lb });
                        }
                        c
                    };
                    if let Some(&client) = self.req_client.get(&completion.id.0) {
                        let delay = self.cfg.net.sample_one_way(
                            r_region,
                            self.clients[client].spec.region,
                            &mut self.rng,
                        );
                        sched.after(delay, Ev::DeliverCompletion { client, completion });
                    }
                }
                if !crashed {
                    if self.replica_health[i] == ReplicaHealth::Draining
                        && self.replicas[i].is_idle()
                    {
                        self.replica_health[i] = ReplicaHealth::Retired;
                    }
                    sched.at(now, Ev::ReplicaKick { replica });
                }
            }
            Ev::KvTransfer { to, req } => {
                let tokens = req.prompt.len() as u64;
                let target = match self.replica_health[to as usize] {
                    // A retired/draining target raced the transfer in
                    // flight; it still owes this landing service (the
                    // receive path below un-retires it).
                    ReplicaHealth::Active | ReplicaHealth::Draining | ReplicaHealth::Retired => {
                        Some(to as usize)
                    }
                    // The decode side died with the KV on the wire:
                    // re-ship to a survivor (the extra hop is not
                    // re-billed — the prefill side streams to the new
                    // target in the same window).
                    ReplicaHealth::Crashed => {
                        self.pick_decode_target(self.replica_region[to as usize], &req.prompt)
                    }
                };
                let Some(to) = target else {
                    self.transfers.aborted += 1;
                    self.transfers.tokens_aborted += tokens;
                    self.fail_or_reroute(req, now, sched);
                    return;
                };
                self.transfers.landed += 1;
                self.transfers.tokens_landed += tokens;
                // The shipped KV state materializes in the decode
                // replica's prefix cache, so admission skips the
                // re-prefill; a failed prewarm (cache too small) just
                // means the decode replica recomputes.
                self.replicas[to].prewarm(&req.prompt);
                sched.at(
                    now,
                    Ev::ReplicaReceive {
                        replica: to as u32,
                        req,
                    },
                );
            }
            Ev::DeliverFirstToken { req } => {
                self.trace(now, TraceEventKind::FirstTokenDelivered { req: req.0 });
                self.tracker.first_token(req.0, now);
                if self.telemetry.is_some() {
                    let arrived = self.tracker.arrival_time(req.0);
                    let region = self
                        .req_client
                        .get(&req.0)
                        .map(|&c| self.clients[c].spec.region);
                    if let (Some(arrived), Some(plane)) = (arrived, self.telemetry.as_mut()) {
                        let ttft = now.saturating_since(arrived).as_secs_f64();
                        plane.registry.observe("skywalker_ttft_seconds", &[], ttft);
                        if let Some(region) = region {
                            plane.registry.observe(
                                "skywalker_region_ttft_seconds",
                                &[("region", region.name())],
                                ttft,
                            );
                        }
                    }
                }
            }
            Ev::DeliverCompletion { client, completion } => {
                self.trace(
                    now,
                    TraceEventKind::Delivered {
                        req: completion.id.0,
                    },
                );
                self.tracker.completion(
                    completion.id.0,
                    now,
                    u64::from(completion.generated_tokens),
                    u64::from(completion.cached_prompt_tokens),
                );
                self.request_finished(client, sched);
            }
            Ev::ProbeTick => {
                let mut ids = std::mem::take(&mut self.probe_ids);
                for (li, lb) in self.lbs.iter_mut().enumerate() {
                    if !self.lb_alive[li] {
                        continue;
                    }
                    ids.clear();
                    lb.replica_ids_into(&mut ids);
                    for &rid in &ids {
                        let r = &self.replicas[rid.0 as usize];
                        lb.on_replica_probe(
                            rid,
                            r.pending_len() as u32,
                            r.running_len() as u32,
                            r.kv_utilization(),
                        );
                        if let Some(state) = lb.replica_state(rid) {
                            let p = &mut self.peak_outstanding[rid.0 as usize];
                            *p = (*p).max(state.outstanding);
                        }
                    }
                }
                self.probe_ids = ids;
                for (ri, r) in self.replicas.iter().enumerate() {
                    if self.replica_health[ri] != ReplicaHealth::Crashed {
                        self.kv_series[ri].record(now, r.kv_utilization());
                    }
                }
                if self.forward_enabled {
                    let mut statuses = std::mem::take(&mut self.probe_statuses);
                    statuses.clear();
                    statuses.extend(
                        self.lbs
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| self.lb_alive[*i])
                            .map(|(i, lb)| {
                                let (avail, qlen) = lb.status();
                                (i as u32, lb.region(), avail, qlen)
                            }),
                    );
                    for (to, lb) in self.lbs.iter().enumerate() {
                        if !self.lb_alive[to] {
                            continue;
                        }
                        for &(from, from_region, avail, qlen) in &statuses {
                            if from == to as u32 {
                                continue;
                            }
                            let delay = self.cfg.net.sample_one_way(
                                lb.region(),
                                from_region,
                                &mut self.rng,
                            );
                            sched.after(
                                delay,
                                Ev::PeerStatus {
                                    to: to as u32,
                                    from,
                                    avail,
                                    qlen,
                                },
                            );
                        }
                    }
                    self.probe_statuses = statuses;
                }
                for li in 0..self.lbs.len() {
                    if self.lb_alive[li] {
                        sched.at(now, Ev::LbDispatch { lb: li as u32 });
                    }
                }
                sched.after(self.cfg.probe_interval, Ev::ProbeTick);
            }
            Ev::TelemetryTick => {
                self.telemetry_sample(now);
                if let Some(plane) = &self.telemetry {
                    sched.after(plane.cfg.interval, Ev::TelemetryTick);
                }
            }
            Ev::PeerStatus {
                to,
                from,
                avail,
                qlen,
            } => {
                if self.lb_alive[to as usize] {
                    self.lbs[to as usize].on_peer_probe(LbId(from), avail, qlen);
                    sched.at(now, Ev::LbDispatch { lb: to });
                }
            }
            Ev::HeartbeatTick => {
                for li in 0..self.lbs.len() {
                    if self.lb_alive[li] {
                        let actions = self.controller.heartbeat(LbId(li as u32), now);
                        self.apply_control_actions(actions, now, sched);
                    }
                }
                sched.after(self.cfg.heartbeat_interval, Ev::HeartbeatTick);
            }
            Ev::ControllerTick => {
                let actions = self.controller.check(now);
                self.apply_control_actions(actions, now, sched);
                sched.after(self.cfg.heartbeat_interval, Ev::ControllerTick);
            }
            Ev::FleetPoll => {
                if self.plan.is_none() {
                    return;
                }
                let mut obs = std::mem::replace(
                    &mut self.obs_scratch,
                    FleetObservation {
                        now: SimTime::ZERO,
                        replicas: Vec::new(),
                        balancers: Vec::new(),
                    },
                );
                self.observe_into(now, &mut obs);
                // Look one poll interval ahead so every scheduled
                // command can fire at its exact instant instead of
                // being quantized to poll boundaries.
                let horizon = now + self.cfg.fleet_poll_interval;
                let mut plan = self.plan.take().expect("checked above");
                let commands = plan.next_events(horizon, &obs, &mut self.fleet_rng);
                let done = plan.is_done();
                self.plan = Some(plan);
                self.obs_scratch = obs;
                for FleetCommand { at, event } in commands {
                    sched.at(at, Ev::FleetApply { event });
                }
                if !done {
                    sched.after(self.cfg.fleet_poll_interval, Ev::FleetPoll);
                }
            }
            Ev::FleetApply { event } => {
                self.apply_fleet_event(event, now, sched);
            }
        }
    }
}

/// Runs one scenario to completion (all clients done, or the deadline).
pub fn run_scenario(scenario: &Scenario, cfg: &FabricConfig) -> RunSummary {
    let deployment = scenario.deployment;
    // Custom factory if the scenario carries one, else the deployment's
    // built-in policy kind (PolicyKind itself implements PolicyFactory).
    let default_kind = match deployment {
        Deployment::Centralized { policy, .. } | Deployment::PerRegion { policy, .. } => policy,
    };
    let factory: &dyn PolicyFactory = scenario.policy_factory.as_deref().unwrap_or(&default_kind);

    // Each run pulls from a fresh copy of the traffic source, so the
    // same scenario replays identically any number of times.
    let mut source = scenario.traffic.clone();
    let mut traffic_rng = DetRng::for_component(cfg.seed, "fabric/traffic");

    // The fleet control plane: the legacy fault schedule rides along as
    // a ScheduledPlan of balancer flaps, merged with any custom plan.
    // Each run polls a fresh clone, like the traffic source.
    let fault_plan: Option<Box<dyn FleetPlan>> = (!scenario.faults.is_empty()).then(|| {
        Box::new(
            ScheduledPlan::new(
                scenario
                    .faults
                    .iter()
                    .map(|f| {
                        FleetCommand::new(
                            f.at,
                            if f.down {
                                FleetEvent::LbDown { lb: f.lb_index }
                            } else {
                                FleetEvent::LbUp { lb: f.lb_index }
                            },
                        )
                    })
                    .collect(),
            )
            .with_label("faults"),
        ) as Box<dyn FleetPlan>
    });
    let plan: Option<Box<dyn FleetPlan>> = match (fault_plan, scenario.fleet_plan.clone()) {
        (Some(f), Some(p)) => Some(Box::new(MergePlan::new(vec![f, p]))),
        (Some(f), None) => Some(f),
        (None, p) => p,
    };

    // Decide balancer placement. Client regions come from the source's
    // declaration, so every region that may ever see an arrival has a
    // balancer before the run starts.
    let mut lb_regions: Vec<Region> = Vec::new();
    match deployment {
        Deployment::Centralized { lb_region, .. } => lb_regions.push(lb_region),
        Deployment::PerRegion { .. } => {
            for p in &scenario.replicas {
                if !lb_regions.contains(&p.region) {
                    lb_regions.push(p.region);
                }
            }
            for region in source.regions() {
                if !lb_regions.contains(&region) {
                    lb_regions.push(region);
                }
            }
        }
    }

    let mut lbs: Vec<RegionalBalancer> = Vec::new();
    let mut dns = DnsResolver::new(cfg.net.clone());
    let mut controller = Controller::new(cfg.net.clone(), cfg.controller_timeout);
    let forward_enabled = matches!(deployment, Deployment::PerRegion { forward: true, .. });
    for (i, &region) in lb_regions.iter().enumerate() {
        let bcfg = match deployment {
            Deployment::Centralized { policy, push, .. } => BalancerConfig {
                region,
                policy,
                push_mode: push,
                tau: 0,
                trie_max_tokens: cfg.trie_max_tokens,
                affinity_threshold: cfg.affinity_threshold,
                balance_abs_threshold: cfg.balance_abs_threshold,
                max_hops: 0,
                constraint: RoutingConstraint::Unrestricted,
            },
            Deployment::PerRegion {
                policy,
                push,
                forward,
                tau,
                constraint,
            } => BalancerConfig {
                region,
                policy,
                push_mode: push,
                tau,
                trie_max_tokens: cfg.trie_max_tokens,
                affinity_threshold: cfg.affinity_threshold,
                balance_abs_threshold: cfg.balance_abs_threshold,
                max_hops: u8::from(forward),
                constraint,
            },
        };
        lbs.push(RegionalBalancer::with_factory(
            LbId(i as u32),
            bcfg,
            factory,
        ));
        dns.advertise(Endpoint {
            region,
            lb_id: i as u32,
        });
        controller.register_lb(LbId(i as u32), region);
    }
    if forward_enabled {
        for i in 0..lbs.len() {
            for j in 0..lbs.len() {
                if i != j {
                    let (jid, jregion) = (LbId(j as u32), lbs[j].region());
                    lbs[i].add_peer(jid, jregion);
                }
            }
        }
    }

    // The serving engine, cloned into every replica (`None` = the
    // default FCFS + LRU, i.e. the historical hardcoded loop).
    let engine = scenario.engine.clone().unwrap_or_default();

    // Replicas attach to the balancer of their region (or the single
    // centralized balancer). Decode-only replicas are never advertised
    // to any balancer or the controller: the only path to them is a
    // prefill handoff.
    let mut replicas: Vec<Replica> = Vec::new();
    let mut replica_region: Vec<Region> = Vec::new();
    let replica_role: Vec<ReplicaRole> = (0..scenario.replicas.len())
        .map(|i| scenario.roles.get(i).copied().unwrap_or_default())
        .collect();
    for (i, p) in scenario.replicas.iter().enumerate() {
        let rid = ReplicaId(i as u32);
        replicas.push(Replica::with_engine(
            rid,
            p.profile,
            engine.batch.clone(),
            engine.evictor.clone(),
        ));
        replica_region.push(p.region);
        if replica_role[i] == ReplicaRole::DecodeOnly {
            continue;
        }
        let home = match deployment {
            Deployment::Centralized { .. } => 0usize,
            Deployment::PerRegion { .. } => lb_regions
                .iter()
                .position(|r| *r == p.region)
                .expect("replica region has a balancer"),
        };
        lbs[home].add_replica_in(rid, p.region);
        controller.register_replica(rid, LbId(home as u32));
    }

    let n_replicas = replicas.len();
    // Admit the t = 0 cohort before the engine starts: their first
    // stages are scheduled ahead of every tick event, which keeps a
    // pre-materialized population bit-identical to the legacy eager
    // path. Later arrivals stream in through `Ev::TrafficPoll`.
    let initial = source.next_batch(SimTime::ZERO, &mut traffic_rng);
    let source_exhausted = source.is_exhausted();
    let active_clients = initial.len();
    // A zero poll interval would re-enqueue `Ev::TrafficPoll` at the
    // same instant forever; clamp so the poll loop always advances (and
    // a sub-millisecond interval buys nothing — arrivals are scheduled
    // at their exact instants via the look-ahead either way).
    let mut world_cfg = cfg.clone();
    world_cfg.traffic_poll_interval = world_cfg
        .traffic_poll_interval
        .max(SimDuration::from_millis(1));
    world_cfg.fleet_poll_interval = world_cfg
        .fleet_poll_interval
        .max(SimDuration::from_millis(1));
    // A zero telemetry interval would re-enqueue `Ev::TelemetryTick` at
    // the same instant forever; clamp like the poll intervals.
    if let Some(t) = world_cfg.telemetry.as_mut() {
        t.interval = t.interval.max(SimDuration::from_millis(1));
    }
    let telemetry_plane = world_cfg.telemetry.map(TelemetryPlane::new);
    let mut fleet_sizes: BTreeMap<Region, TimeSeries> = BTreeMap::new();
    for p in &scenario.replicas {
        fleet_sizes
            .entry(p.region)
            .or_insert_with(|| TimeSeries::new(format!("fleet/{:?}", p.region)));
    }
    let mut world = Fabric {
        cfg: world_cfg,
        rng: DetRng::for_component(cfg.seed, "fabric/net"),
        lb_alive: vec![true; lbs.len()],
        lbs,
        replicas,
        replica_region,
        replica_stepping: vec![false; n_replicas],
        replica_role,
        disagg: BTreeMap::new(),
        transfers: TransferSummary::default(),
        clients: initial
            .into_iter()
            .map(|ev| ClientState {
                spec: ev.spec,
                program_idx: 0,
                stage_idx: 0,
                inflight: 0,
                finished: false,
            })
            .collect(),
        dns,
        controller,
        tracker: RequestTracker::new(),
        source,
        source_exhausted,
        pending_arrivals: 0,
        traffic_rng,
        req_client: HashMap::new(),
        req_lb: HashMap::new(),
        kv_series: (0..n_replicas)
            .map(|i| TimeSeries::new(format!("replica-{i}/kv")))
            .collect(),
        peak_outstanding: vec![0; n_replicas],
        active_clients,
        forward_enabled,
        plan,
        fleet_rng: DetRng::for_component(cfg.seed, "fabric/fleet"),
        engine,
        replica_health: vec![ReplicaHealth::Active; n_replicas],
        fleet_sizes,
        joins: 0,
        drains: 0,
        crashes: 0,
        rerouted_once: HashSet::new(),
        tracer: cfg.trace.map(TraceRecorder::new),
        telemetry: telemetry_plane,
        last_evicted: vec![0; n_replicas],
        probe_ids: Vec::new(),
        probe_statuses: Vec::new(),
        obs_scratch: FleetObservation {
            now: SimTime::ZERO,
            replicas: Vec::new(),
            balancers: Vec::new(),
        },
        fleet_counts: Vec::new(),
    };
    world.record_fleet(SimTime::ZERO);

    let mut engine: Engine<Ev> = Engine::new();
    for c in 0..world.clients.len() {
        engine.schedule(SimTime::ZERO, Ev::IssueStage { client: c });
    }
    // A defensively-constructed scenario can hold an empty source (the
    // builder rejects them); skip the self-perpetuating ticks so the run
    // terminates immediately instead of idling to the deadline.
    let has_traffic = !world.clients.is_empty() || !world.source_exhausted;
    if has_traffic {
        engine.schedule(SimTime::ZERO, Ev::ProbeTick);
        engine.schedule(SimTime::ZERO, Ev::HeartbeatTick);
        engine.schedule(SimTime::ZERO + cfg.heartbeat_interval, Ev::ControllerTick);
        if !world.source_exhausted {
            engine.schedule(SimTime::ZERO, Ev::TrafficPoll);
        }
        if world.plan.is_some() {
            engine.schedule(SimTime::ZERO, Ev::FleetPoll);
        }
        if world.telemetry.is_some() {
            engine.schedule(SimTime::ZERO, Ev::TelemetryTick);
        }
    }

    let stats = engine.run_until(&mut world, cfg.deadline);
    let end = stats.end_time;
    world.record_fleet(end);
    // One final flush so the summary snapshot reflects the end state even
    // when the run ends between ticks (no-op with telemetry off).
    world.telemetry_sample(end);

    let report = world.tracker.report(end);
    let replica_stats: Vec<ReplicaStats> = world.replicas.iter().map(|r| r.stats()).collect();
    let prompt_tokens: u64 = replica_stats.iter().map(|s| s.prompt_tokens).sum();
    let cached_tokens: u64 = replica_stats.iter().map(|s| s.cached_prompt_tokens).sum();
    let forwarded: u64 = world.lbs.iter().map(|l| l.stats().forwarded).sum();

    let mut dispatch_counts: BTreeMap<u32, u64> = BTreeMap::new();
    for lb in &world.lbs {
        for (rid, n) in lb.dispatch_counts() {
            *dispatch_counts.entry(rid.0).or_insert(0) += n;
        }
    }
    let imbalance = |vals: Vec<f64>| -> f64 {
        let max = vals.iter().copied().fold(f64::MIN, f64::max);
        let min = vals.iter().copied().fold(f64::MAX, f64::min);
        if vals.len() < 2 || min <= 0.0 {
            1.0
        } else {
            max / min
        }
    };
    let dispatch_imbalance = imbalance(
        (0..world.replicas.len())
            .map(|i| *dispatch_counts.get(&(i as u32)).unwrap_or(&0) as f64)
            .collect(),
    );
    let outstanding_imbalance = imbalance(
        world
            .peak_outstanding
            .iter()
            .map(|&v| f64::from(v))
            .collect(),
    );
    let peak_lb_queue = world
        .lbs
        .iter()
        .map(|l| l.stats().peak_queue)
        .max()
        .unwrap_or(0);
    let series_refs: Vec<&TimeSeries> = world.kv_series.iter().collect();
    let kv_peak_gap = peak_gap(&series_refs);
    let final_replicas = world
        .replica_health
        .iter()
        .filter(|h| **h == ReplicaHealth::Active)
        .count() as u32;
    let fleet = FleetSummary {
        sizes: world.fleet_sizes.into_iter().collect(),
        joins: world.joins,
        drains: world.drains,
        crashes: world.crashes,
        final_replicas,
    };

    let preempted: u64 = replica_stats.iter().map(|s| s.preempted).sum();
    let evicted_tokens: u64 = replica_stats.iter().map(|s| s.evicted_tokens).sum();
    let chunked_steps: u64 = replica_stats.iter().map(|s| s.chunked_steps).sum();
    let demoted_tokens: u64 = replica_stats.iter().map(|s| s.demoted_tokens).sum();
    let promoted_tokens: u64 = replica_stats.iter().map(|s| s.promoted_tokens).sum();

    RunSummary {
        label: scenario.label.clone(),
        system: scenario.system,
        report,
        end_time: end,
        replica_hit_rate: if prompt_tokens > 0 {
            cached_tokens as f64 / prompt_tokens as f64
        } else {
            0.0
        },
        engine_label: world.engine.label(),
        preempted,
        evicted_tokens,
        chunked_steps,
        demoted_tokens,
        promoted_tokens,
        transfers: world.transfers,
        replica_stats,
        forwarded,
        dispatch_imbalance,
        outstanding_imbalance,
        peak_outstanding: world.peak_outstanding,
        peak_lb_queue,
        peak_events: engine.peak_pending(),
        kv_peak_gap,
        kv_series: world.kv_series,
        fleet,
        trace: world.tracer.map(TraceRecorder::into_summary),
        telemetry: world.telemetry.map(TelemetryPlane::into_summary),
    }
}
