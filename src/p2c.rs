//! Power-of-two-choices routing with locality weighting — a policy the
//! paper does *not* ship, implemented entirely outside `skywalker-core`
//! as the worked proof that the [`RoutingPolicy`] surface is open.
//!
//! Classic P2C (Mitzenmacher) samples two candidates uniformly and takes
//! the less loaded one: almost all of least-load's balance at a fraction
//! of its herd behavior, because two random choices rarely stampede the
//! same target between probe refreshes. [`P2cLocal`] adds a locality
//! weight on top: a candidate on another continent pays a fixed load
//! penalty, so under comparable load the policy keeps traffic close to
//! home, and only when the local side is genuinely deeper by more than
//! the penalty does it spill across the ocean — a smooth version of the
//! "local first, remote only on overload" rule that SkyWalker hard-codes
//! structurally.
//!
//! The same instance serves both layers of the two-layer design: at the
//! replica layer every candidate is home-region (the penalty never
//! fires) and the policy degrades to pure P2C; at the peer layer the
//! candidates carry their regions and locality weighting kicks in.
//!
//! Nothing here touches `skywalker-core` internals: the policy uses only
//! the public trait, [`TargetState`], and [`PolicyFactory`]. See
//! `docs/extending.md` for the recipe.

use skywalker_core::{BalancerConfig, LbId, PolicyFactory, RingTarget, RoutingPolicy, TargetState};
use skywalker_net::Region;
use skywalker_replica::ReplicaId;
use skywalker_sim::DetRng;

/// Power-of-two-choices with a locality weight (see module docs).
#[derive(Debug, Clone)]
pub struct P2cLocal {
    /// The region whose continent counts as "local".
    home: Region,
    /// Load penalty added to candidates on another continent.
    locality_penalty: u32,
    /// Deterministic sampling stream (the simulator replays runs
    /// bit-for-bit, so ambient entropy is off the table).
    rng: DetRng,
}

impl P2cLocal {
    /// A policy homed in `home` with the given cross-continent penalty.
    pub fn new(home: Region, locality_penalty: u32, rng: DetRng) -> Self {
        P2cLocal {
            home,
            locality_penalty,
            rng,
        }
    }

    /// Effective load of one candidate: raw load plus the locality
    /// penalty when it sits on another continent (unknown regions are
    /// treated as local — the caller simply did not tag them).
    fn weighted_load<T>(&self, c: &TargetState<T>) -> u64 {
        let remote = c
            .region
            .is_some_and(|r| r.continent() != self.home.continent());
        u64::from(c.load)
            + if remote {
                u64::from(self.locality_penalty)
            } else {
                0
            }
    }
}

impl<T: RingTarget> RoutingPolicy<T> for P2cLocal {
    fn select(&mut self, _key: &str, _prompt: &[u32], candidates: &[TargetState<T>]) -> Option<T> {
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0].id),
            n => {
                // Two distinct uniform picks.
                let i = self.rng.below(n as u64) as usize;
                let mut j = self.rng.below(n as u64 - 1) as usize;
                if j >= i {
                    j += 1;
                }
                let (a, b) = (&candidates[i], &candidates[j]);
                // Lower weighted load wins; ties break toward the
                // first-sampled candidate (uniform over the pair, not
                // lowest index — determinism comes from the seeded rng).
                if self.weighted_load(b) < self.weighted_load(a) {
                    Some(b.id)
                } else {
                    Some(a.id)
                }
            }
        }
    }

    fn name(&self) -> &str {
        "P2C-Local"
    }
}

/// Builds [`P2cLocal`] policies for every balancer of a deployment; each
/// balancer's own region becomes the policy's home, and each layer gets
/// an independent deterministic sampling stream.
#[derive(Debug, Clone, Copy)]
pub struct P2cLocalFactory {
    /// Root seed for the per-balancer sampling streams.
    pub seed: u64,
    /// Cross-continent load penalty (requests). The default of 8 is
    /// roughly one probe window of work: a remote target must be a full
    /// burst quieter before it beats a local one.
    pub locality_penalty: u32,
}

impl P2cLocalFactory {
    /// A factory with the default locality penalty of 8.
    pub fn new(seed: u64) -> Self {
        P2cLocalFactory {
            seed,
            locality_penalty: 8,
        }
    }
}

impl PolicyFactory for P2cLocalFactory {
    fn build_local(&self, cfg: &BalancerConfig) -> Box<dyn RoutingPolicy<ReplicaId>> {
        Box::new(P2cLocal::new(
            cfg.region,
            self.locality_penalty,
            DetRng::for_component(self.seed, &format!("p2c/{:?}/local", cfg.region)),
        ))
    }

    fn build_remote(&self, cfg: &BalancerConfig) -> Box<dyn RoutingPolicy<LbId>> {
        Box::new(P2cLocal::new(
            cfg.region,
            self.locality_penalty,
            DetRng::for_component(self.seed, &format!("p2c/{:?}/remote", cfg.region)),
        ))
    }

    fn label(&self) -> String {
        "P2C-Local".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(home: Region, penalty: u32, seed: u64) -> P2cLocal {
        P2cLocal::new(home, penalty, DetRng::for_component(seed, "p2c/test"))
    }

    #[test]
    fn prefers_local_region_under_equal_load() {
        // One overseas candidate among two local ones, all at identical
        // load: every pair P2C can sample contains a local candidate, and
        // the weighted comparison must keep traffic at home — across many
        // draws and several seeds.
        for seed in 0..8u64 {
            let mut p = policy(Region::UsEast, 8, seed);
            let c = vec![
                TargetState::new(0u32, 5).in_region(Region::ApNortheast),
                TargetState::new(1u32, 5).in_region(Region::UsEast),
                TargetState::new(2u32, 5).in_region(Region::UsEast),
            ];
            for _ in 0..200 {
                let picked = p.select("k", &[], &c).unwrap();
                assert_ne!(picked, 0, "seed {seed}: equal load must stay local");
            }
        }
    }

    #[test]
    fn spills_under_imbalance() {
        // The local candidate is deeper than the remote one by more than
        // the locality penalty: the policy must be willing to spill.
        let mut p = policy(Region::UsEast, 8, 3);
        let c = vec![
            TargetState::new(0u32, 40).in_region(Region::UsEast),
            TargetState::new(1u32, 2).in_region(Region::EuWest),
        ];
        for _ in 0..50 {
            assert_eq!(p.select("k", &[], &c), Some(1), "overload must spill");
        }
        // Within the penalty band, home still wins.
        let c = vec![
            TargetState::new(0u32, 6).in_region(Region::UsEast),
            TargetState::new(1u32, 2).in_region(Region::EuWest),
        ];
        for _ in 0..50 {
            assert_eq!(p.select("k", &[], &c), Some(0), "small gaps stay local");
        }
    }

    #[test]
    fn same_continent_counts_as_local() {
        // From EuWest, EuCentral is same-continent: no penalty, so equal
        // load between EuCentral and ApNortheast must pick EuCentral.
        let mut p = policy(Region::EuWest, 8, 11);
        let c = vec![
            TargetState::new(0u32, 3).in_region(Region::ApNortheast),
            TargetState::new(1u32, 3).in_region(Region::EuCentral),
        ];
        for _ in 0..100 {
            assert_eq!(p.select("k", &[], &c), Some(1));
        }
    }

    #[test]
    fn untagged_candidates_fall_back_to_pure_p2c() {
        let mut p = policy(Region::UsEast, 8, 17);
        let c = vec![TargetState::new(0u32, 9), TargetState::new(1u32, 1)];
        for _ in 0..50 {
            assert_eq!(p.select("k", &[], &c), Some(1), "pure P2C takes less load");
        }
    }

    #[test]
    fn edge_cases_and_determinism() {
        let mut p = policy(Region::UsEast, 8, 23);
        assert_eq!(p.select("k", &[], &[] as &[TargetState<u32>]), None);
        let single = vec![TargetState::new(7u32, 100)];
        assert_eq!(p.select("k", &[], &single), Some(7));

        // Identical seeds draw identical pick sequences.
        let c: Vec<TargetState<u32>> = (0..6).map(|i| TargetState::new(i, (i * 7) % 5)).collect();
        let mut a = policy(Region::UsEast, 8, 29);
        let mut b = policy(Region::UsEast, 8, 29);
        for _ in 0..100 {
            assert_eq!(a.select("k", &[], &c), b.select("k", &[], &c));
        }
    }

    #[test]
    fn factory_builds_both_layers() {
        let f = P2cLocalFactory::new(5);
        let cfg = BalancerConfig::skywalker(Region::EuWest);
        let mut local = f.build_local(&cfg);
        let mut remote = f.build_remote(&cfg);
        assert_eq!(local.name(), "P2C-Local");
        assert_eq!(f.label(), "P2C-Local");
        let c = vec![TargetState::new(ReplicaId(0), 0)];
        assert_eq!(local.select("k", &[], &c), Some(ReplicaId(0)));
        let c = vec![TargetState::new(LbId(1), 0).in_region(Region::EuCentral)];
        assert_eq!(remote.select("k", &[], &c), Some(LbId(1)));
    }
}
