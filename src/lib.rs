//! # SkyWalker
//!
//! A from-scratch Rust reproduction of *SkyWalker: A Locality-Aware
//! Cross-Region Load Balancer for LLM Inference* (Xia et al., EuroSys
//! '26) — the load balancer itself plus every substrate its evaluation
//! depends on.
//!
//! ## Crate map
//!
//! | Crate | Provides |
//! |---|---|
//! | `skywalker-sim` | deterministic discrete-event engine, seeded RNG |
//! | `skywalker-net` | regions, WAN latency model, DNS, wire codec |
//! | `skywalker-replica` | continuous-batching replica with radix KV cache |
//! | `skywalker-workload` | WildChat/Arena/ToT-style trace generators |
//! | `skywalker-core` | the balancer: policies, selective pushing, trie, ring, controller |
//! | `skywalker-cost` | reserved/on-demand provisioning cost model |
//! | `skywalker-metrics` | histograms, request tracking, time series |
//! | `skywalker-live` | real TCP balancer/replica servers on localhost |
//! | this crate | the [`fabric`] tying everything into runnable scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use skywalker::fabric::{run_scenario, FabricConfig, SystemKind};
//! use skywalker::scenarios::{fig8_scenario, Workload};
//!
//! // A small ChatBot Arena run on SkyWalker's deployment shape.
//! let scenario = fig8_scenario(SystemKind::SkyWalker, Workload::Arena, 0.05, 7);
//! let summary = run_scenario(&scenario, &FabricConfig::default());
//! assert!(summary.report.completed > 0);
//! println!(
//!     "throughput: {:.0} tok/s, p50 TTFT: {:.3}s",
//!     summary.report.throughput_tps, summary.report.ttft.p50
//! );
//! ```

pub mod fabric;
pub mod scenarios;

pub use fabric::{
    run_scenario, Deployment, FabricConfig, FaultEvent, ReplicaPlacement, RunSummary,
    Scenario, SystemKind,
};
pub use scenarios::{
    balanced_fleet, fig10_scenario, fig8_scenario, fig9_scenario, l4_fleet,
    unbalanced_fleet, workload_clients, Workload, REGIONS,
};

// Re-export the member crates under stable names so downstream users can
// depend on `skywalker` alone.
pub use skywalker_core as core;
pub use skywalker_cost as cost;
pub use skywalker_metrics as metrics;
pub use skywalker_net as net;
pub use skywalker_replica as replica;
pub use skywalker_sim as sim;
pub use skywalker_workload as workload;
