//! # SkyWalker
//!
//! A from-scratch Rust reproduction of *SkyWalker: A Locality-Aware
//! Cross-Region Load Balancer for LLM Inference* (Xia et al., EuroSys
//! '26) — the load balancer itself plus every substrate its evaluation
//! depends on.
//!
//! ## Crate map
//!
//! | Crate | Provides |
//! |---|---|
//! | `skywalker-sim` | deterministic discrete-event engine, seeded RNG |
//! | `skywalker-net` | regions, WAN latency model, DNS, wire codec |
//! | `skywalker-replica` | continuous-batching replica with radix KV cache |
//! | `skywalker-workload` | WildChat/Arena/ToT-style trace generators |
//! | `skywalker-core` | the balancer: the open [`RoutingPolicy`](core::RoutingPolicy) trait and its four built-ins, selective pushing, trie, ring, controller |
//! | `skywalker-fleet` | the elastic fleet control plane: the open [`FleetPlan`] trait, [`ScheduledPlan`], [`ChaosPlan`], [`ThresholdAutoscaler`] |
//! | `skywalker-cost` | reserved/on-demand provisioning cost model |
//! | `skywalker-metrics` | histograms, request tracking, time series, the `BENCH_*.json` serializer |
//! | `skywalker-live` | real TCP balancer/replica servers on localhost |
//! | `skywalker-lab` | the parallel experiment lab: deterministic multi-threaded sweeps over scenario grids |
//! | `skywalker-trace` | run tracer: span recording, per-request bottleneck attribution, flamegraph-style reports, run diffs (`docs/tracing.md`) |
//! | `skywalker-telemetry` | streaming metrics plane: mergeable quantile sketches, labeled registry, ring series, Prometheus/JSON/markdown export (`docs/telemetry.md`) |
//! | this crate | the [`fabric`] with [`ScenarioBuilder`], the preset [`scenarios`], and [`P2cLocal`] — a custom policy built on the open surface |
//!
//! `skywalker-lab` sits *above* this facade (it consumes [`Scenario`]
//! and [`run_scenario`]), so it is not re-exported here — depend on it
//! directly; [`fig8_recipe`] and [`diurnal_recipe`] below are shaped
//! for its `SweepSpec::cell`.
//!
//! ## Quickstart
//!
//! Scenarios are assembled with a fluent builder: pick a deployment
//! shape (or start from a [`SystemKind`] preset), a fleet, a workload,
//! and optionally a custom routing policy, then run it:
//!
//! ```
//! use skywalker::{run_scenario, FabricConfig, P2cLocalFactory, Scenario};
//! use skywalker::scenarios::{balanced_fleet, Workload};
//!
//! // A small ToT run on SkyWalker's per-region deployment shape, but
//! // routed by a policy the paper never shipped: power-of-two-choices
//! // with locality weighting, plugged in from outside the core crate.
//! let scenario = Scenario::builder()
//!     .replicas(balanced_fleet())
//!     .workload(Workload::Tot, 0.02, 7)
//!     .policy_factory(P2cLocalFactory::new(7))
//!     .build()
//!     .expect("fleet and workload are both set");
//! let summary = run_scenario(&scenario, &FabricConfig::default());
//! assert!(summary.report.completed > 0);
//! println!(
//!     "{}: {:.0} tok/s, p50 TTFT {:.3}s",
//!     summary.label, summary.report.throughput_tps, summary.report.ttft.p50
//! );
//! ```
//!
//! The paper's seven systems remain available as presets — each is now a
//! thin wrapper over the same builder. The system-comparison loop below
//! is `examples/quickstart.rs` in miniature (run the real thing with
//! `cargo run --release --example quickstart`), compiled here so the
//! front-door code can never rot:
//!
//! ```
//! use skywalker::{fig8_scenario, run_scenario, FabricConfig, SystemKind, Workload};
//!
//! for system in [SystemKind::RoundRobin, SystemKind::SglRouter, SystemKind::SkyWalker] {
//!     let scenario = fig8_scenario(system, Workload::Arena, 0.02, 42);
//!     let s = run_scenario(&scenario, &FabricConfig::default());
//!     assert!(s.report.completed > 0);
//!     println!(
//!         "{:<14} {:>8.0} tok/s  TTFT p50 {:>6.2}s  hit {:>5.1}%  fwd {}",
//!         system.label(),
//!         s.report.throughput_tps,
//!         s.report.ttft.p50,
//!         100.0 * s.replica_hit_rate,
//!         s.forwarded,
//!     );
//! }
//! ```
//!
//! To run a whole *grid* of such cells — policy × workload × fleet ×
//! seed — in parallel with bit-identical results at any thread count,
//! hand [`fig8_recipe`] (or any closure building a [`Scenario`]) to
//! `skywalker_lab::SweepSpec`; see `examples/sweep.rs` and
//! `docs/architecture.md`.
//!
//! ## Extending
//!
//! All four experiment axes are open:
//!
//! - **Routing**: implement [`RoutingPolicy`](core::RoutingPolicy) (one
//!   required method) and a [`PolicyFactory`](core::PolicyFactory), hand
//!   the factory to [`ScenarioBuilder::policy_factory`], and the same
//!   implementation runs in the simulator and behind the live TCP
//!   servers. Recipe in `docs/extending.md`; [`P2cLocal`] is the worked
//!   example.
//! - **Traffic**: implement [`TrafficSource`] —
//!   a lazy stream of client arrivals the fabric pulls as simulated time
//!   advances — and hand it to [`ScenarioBuilder::traffic_source`]. The
//!   paper's four workloads are presets over the same trait
//!   ([`Workload::source`]); recipe in `docs/workloads.md`;
//!   [`RagCorpusSource`] and [`FlashCrowdSource`] are the worked
//!   examples, both living outside the workload crate.
//! - **Fleet**: implement [`FleetPlan`] — a stream of joins, drains,
//!   crashes, and balancer flaps the fabric polls with a live
//!   [`FleetObservation`] as simulated time advances — and hand it to
//!   [`ScenarioBuilder::fleet_plan`]. [`ScheduledPlan`], [`ChaosPlan`],
//!   and [`ThresholdAutoscaler`] are the built-ins; recipe in
//!   `docs/fleet.md`; [`PredictiveAutoscaler`] (diurnal-aware
//!   pre-provisioning) is the worked example outside the fleet crate.
//! - **Serving engine**: implement [`BatchPolicy`] (per-iteration
//!   admission order, prefill chunking, preemption) and/or
//!   [`KvEvictor`] (which unpinned prefix-cache state dies under
//!   memory pressure), bundle them in an [`EngineSpec`], and hand it
//!   to [`ScenarioBuilder::engine`] — every replica, including mid-run
//!   fleet joins, runs a clone. [`FcfsBatch`] + [`LruEvictor`] are the
//!   (byte-identical-to-history) defaults; recipe in `docs/replica.md`;
//!   [`ShortestPromptFirst`] is the worked example outside the replica
//!   crate, and `examples/engine_shootout.rs` races engines under the
//!   [`memory_pressure_scenario`] preset.
//!
//! And once cells exist on any axis, `skywalker-lab` sweeps their cross
//! product — policy × workload × fleet × seed — across OS threads with
//! bit-identical results at any worker count (`examples/sweep.rs`;
//! determinism rules in `docs/architecture.md`).

pub mod autoscale;
pub mod fabric;
mod p2c;
pub mod scenarios;
mod sjf;
pub mod sources;

pub use autoscale::{PredictiveAutoscaler, PredictiveConfig};
pub use fabric::{
    run_scenario, Deployment, FabricConfig, FaultEvent, FleetSummary, ReplicaPlacement, RunSummary,
    Scenario, ScenarioBuilder, ScenarioError, SystemKind, TransferSummary,
};
pub use p2c::{P2cLocal, P2cLocalFactory};
pub use scenarios::{
    balanced_fleet, disagg_engine, disagg_recipe, disagg_scenario, diurnal_recipe,
    diurnal_reference_predictive, diurnal_reference_reactive, equal_cost_lite_fleet,
    fig10_diurnal_scenario, fig10_scenario, fig8_recipe, fig8_scenario, fig9_scenario, l4_fleet,
    lite_fleet, memory_pressure_recipe, memory_pressure_scenario, trio_diurnal_profiles,
    unbalanced_fleet, workload_clients, DisaggWorkload, Workload, L4_LITE, L4_PRESSURE, REGIONS,
};
pub use sjf::ShortestPromptFirst;
pub use skywalker_fleet::{
    AutoscalerConfig, ChaosConfig, ChaosPlan, FleetCommand, FleetEvent, FleetObservation,
    FleetPlan, MergePlan, ScheduledPlan, ThresholdAutoscaler,
};
pub use skywalker_replica::{
    BatchPlan, BatchPolicy, EngineSpec, EvictCandidate, FcfsBatch, KvEvictor, LruEvictor, NoEvict,
    PendingView, PrefixAwareEvictor, ReplicaRole, RunningView, StepView, TieredEvictor,
};
pub use skywalker_telemetry::{
    markdown_table, prometheus_text, MetricsRegistry, MetricsSnapshot, QuantileSketch, RingSeries,
    TelemetryConfig, TelemetrySummary,
};
pub use skywalker_trace::{
    Attribution, BottleneckReport, Phase, TraceConfig, TraceDiff, TraceSummary,
};
pub use sources::{DiurnalSource, FlashCrowdSource, RagCorpusConfig, RagCorpusSource};
pub use workload::{
    ArrivalSchedule, ClientEvent, ClientListSource, ConversationSource, MergeSource, TotSource,
    TrafficSource,
};

// Re-export the member crates under stable names so downstream users can
// depend on `skywalker` alone.
pub use skywalker_core as core;
pub use skywalker_cost as cost;
pub use skywalker_fleet as fleet;
pub use skywalker_metrics as metrics;
pub use skywalker_net as net;
pub use skywalker_replica as replica;
pub use skywalker_sim as sim;
pub use skywalker_telemetry as telemetry;
pub use skywalker_trace as trace;
pub use skywalker_workload as workload;
